// A4 (part 2): XML interchange microbenchmarks — serialization and parsing
// of the full TUTMAC model (the profiler's stage-1 input path).
#include "bench_util.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"
#include "xml/tree.hpp"
#include "xml/xml.hpp"

using namespace tut;

namespace {

void print_header() {
  bench::banner("A4: XML interchange microbenchmarks");
  const tutmac::System sys = tutmac::build();
  const std::string xml = uml::to_xml_string(*sys.model);
  std::cout << "TUTMAC model: " << sys.model->size() << " elements, "
            << xml.size() << " bytes of XML\n";
}

const std::string& tutmac_xml() {
  static const std::string xml = [] {
    const tutmac::System sys = tutmac::build();
    return uml::to_xml_string(*sys.model);
  }();
  return xml;
}

void BM_ModelToXml(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::to_xml_string(*sys.model));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tutmac_xml().size()));
}
BENCHMARK(BM_ModelToXml)->Unit(benchmark::kMicrosecond);

void BM_XmlParseOnly(benchmark::State& state) {
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::parse(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParseOnly)->Unit(benchmark::kMicrosecond);

void BM_ModelFromXml(benchmark::State& state) {
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::from_xml_string(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ModelFromXml)->Unit(benchmark::kMillisecond);

void BM_XmlEscape(benchmark::State& state) {
  const std::string raw(1000, '<');
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::escape(raw));
  }
}
BENCHMARK(BM_XmlEscape)->Unit(benchmark::kMicrosecond);

void BM_XmlEscapeCleanInput(benchmark::State& state) {
  // The common case in model interchange: no escapable bytes at all.
  // escape_view's fast path returns the input view without copying.
  const std::string raw(1000, 'a');
  std::string scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::escape_view(raw, scratch));
  }
}
BENCHMARK(BM_XmlEscapeCleanInput)->Unit(benchmark::kMicrosecond);

void BM_XmlTreeParse(benchmark::State& state) {
  // Pull cursor -> arena tree: the zero-copy counterpart of BM_XmlParseOnly.
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::Tree::parse(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_XmlTreeParse)->Unit(benchmark::kMicrosecond);

void BM_ModelRoundTripDom(benchmark::State& state) {
  // Reference path: mutable DOM both directions (the seed implementation).
  const tutmac::System sys = tutmac::build();
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::from_xml(xml::parse(xml)));
    benchmark::DoNotOptimize(xml::write(uml::to_xml(*sys.model)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ModelRoundTripDom)->Unit(benchmark::kMicrosecond);

void BM_ModelRoundTrip(benchmark::State& state) {
  // Hot path: pull cursor + arena tree in, streaming writer out.
  const tutmac::System sys = tutmac::build();
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::from_xml_text(xml));
    benchmark::DoNotOptimize(uml::to_xml_string(*sys.model));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ModelRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
