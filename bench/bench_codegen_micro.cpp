// A5: code generation throughput and output size for the TUTMAC model.
#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

void print_header() {
  bench::banner("A5: code generation");
  const tutmac::System sys = tutmac::build();
  const auto bundle = codegen::generate(*sys.model);
  std::cout << "generated " << bundle.files.size() << " files, "
            << bundle.total_lines() << " lines, " << bundle.total_bytes()
            << " bytes\n";
  for (const auto& f : bundle.files) {
    std::cout << "  " << f.path << '\n';
  }
}

void BM_GenerateTutmac(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto bundle = codegen::generate(*sys.model);
    bytes = bundle.total_bytes();
    benchmark::DoNotOptimize(bundle);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_GenerateTutmac)->Unit(benchmark::kMillisecond);

void BM_GenerateWithoutInstrumentation(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  codegen::Options opt;
  opt.profiling_instrumentation = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::generate(*sys.model, opt));
  }
}
BENCHMARK(BM_GenerateWithoutInstrumentation)->Unit(benchmark::kMillisecond);

void BM_ExprToC(benchmark::State& state) {
  const std::map<std::string, std::string> rn = {{"pending", "ctx->pending"},
                                                 {"slotcnt", "ctx->slotcnt"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codegen::expr_to_c("pending > 0 && slotcnt % 8 == 0", rn));
  }
}
BENCHMARK(BM_ExprToC);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
