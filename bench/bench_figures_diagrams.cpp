// Regenerates Figures 4-8 of the paper as Graphviz DOT (class diagram,
// composite structure, grouping, platform, mapping) and benchmarks the
// renderers.
#include "bench_util.hpp"
#include "diagram/diagram.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

void print_figures() {
  tutmac::System sys = tutmac::build();

  bench::banner("Figure 4: TUTMAC class diagram (DOT)");
  std::cout << diagram::class_diagram_dot(*sys.model);
  bench::banner("Figure 5: Tutmac_Protocol composite structure (DOT)");
  std::cout << diagram::composite_structure_dot(*sys.app);
  bench::banner("Figure 6: TUTMAC process grouping (DOT)");
  std::cout << diagram::grouping_dot(*sys.model);
  bench::banner("Figure 7: TUTWLAN platform (DOT)");
  std::cout << diagram::platform_dot(*sys.model);
  bench::banner("Figure 8: mapping TUTMAC onto TUTWLAN (DOT)");
  std::cout << diagram::mapping_dot(*sys.model);
}

tutmac::System& shared_system() {
  static tutmac::System sys = tutmac::build();
  return sys;
}

void BM_Fig4ClassDiagram(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diagram::class_diagram_dot(*sys.model));
  }
}
BENCHMARK(BM_Fig4ClassDiagram)->Unit(benchmark::kMicrosecond);

void BM_Fig5CompositeStructure(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diagram::composite_structure_dot(*sys.app));
  }
}
BENCHMARK(BM_Fig5CompositeStructure)->Unit(benchmark::kMicrosecond);

void BM_Fig6Grouping(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diagram::grouping_dot(*sys.model));
  }
}
BENCHMARK(BM_Fig6Grouping)->Unit(benchmark::kMicrosecond);

void BM_Fig7Platform(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diagram::platform_dot(*sys.model));
  }
}
BENCHMARK(BM_Fig7Platform)->Unit(benchmark::kMicrosecond);

void BM_Fig8Mapping(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(diagram::mapping_dot(*sys.model));
  }
}
BENCHMARK(BM_Fig8Mapping)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_figures);
}
