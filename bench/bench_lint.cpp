// A7: whole-design static analysis benchmarks — `tut lint` over the full
// TUTMAC model. The analyzer budget is interactive: a complete run (core
// validation + EFSM bytecode + abstract interpretation + signal flow +
// mapping/platform + source-map offsets) must stay under 5 ms so it can sit
// in an editor save hook and run unconditionally in every CI job.
#include <chrono>
#include <iostream>

#include "analysis/absint.hpp"
#include "analysis/analyzer.hpp"
#include "analysis/source_map.hpp"
#include "bench_util.hpp"
#include "efsm/machine.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"

using namespace tut;

namespace {

const std::string& tutmac_xml() {
  static const std::string xml = [] {
    const tutmac::System sys = tutmac::build();
    return uml::to_xml_string(*sys.model);
  }();
  return xml;
}

void print_header() {
  bench::banner("A7: whole-design static analysis (tut lint)");
  const tutmac::System sys = tutmac::build();
  analysis::Options options;
  options.xml_text = tutmac_xml();
  const analysis::Report report = analysis::analyze(*sys.model, options);
  std::cout << "TUTMAC: " << sys.model->size() << " elements, "
            << analysis::rule_catalog().size() << " analysis rules, findings: "
            << report.error_count() << " errors, " << report.warning_count()
            << " warnings, " << report.info_count() << " infos\n";

  // The acceptance gate, measured directly: median of repeated full runs
  // (parse from XML + analyze with offsets), the exact `tut lint` hot path.
  using clock = std::chrono::steady_clock;
  constexpr int kRuns = 30;
  std::vector<double> ms;
  ms.reserve(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    const auto t0 = clock::now();
    const auto model = uml::from_xml_string(tutmac_xml());
    analysis::Options opt;
    opt.xml_text = tutmac_xml();
    const analysis::Report r = analysis::analyze(*model, opt);
    benchmark::DoNotOptimize(r.diagnostics().data());
    ms.push_back(std::chrono::duration<double, std::milli>(clock::now() - t0)
                     .count());
  }
  std::sort(ms.begin(), ms.end());
  const double median = ms[ms.size() / 2];
  std::cout << "full lint (parse + analyze + offsets, absint on), median of "
            << kRuns << " runs: " << median << " ms — budget 5 ms: "
            << (median < 5.0 ? "ok" : "OVER BUDGET") << "\n";
}

/// Analysis over an in-memory model (the library-call path).
void BM_AnalyzeTutmac(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze(*sys.model).diagnostics().data());
  }
}
BENCHMARK(BM_AnalyzeTutmac)->Unit(benchmark::kMillisecond);

/// The full CLI path: parse the XML, build offsets, run every family.
void BM_LintTutmacFromXml(benchmark::State& state) {
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    const auto model = uml::from_xml_string(xml);
    analysis::Options options;
    options.xml_text = xml;
    benchmark::DoNotOptimize(
        analysis::analyze(*model, options).diagnostics().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_LintTutmacFromXml)->Unit(benchmark::kMillisecond);

/// The abstract-interpretation fixpoint alone: interval invariants for every
/// TUTMAC state machine, from already-compiled bytecode images. This is the
/// marginal cost `--absint` adds on top of the pre-existing rule families.
void BM_AbsintFixpointTutmac(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  std::vector<efsm::CompiledMachine> machines;
  for (const uml::Element* e :
       sys.model->elements_of_kind(uml::ElementKind::StateMachine)) {
    machines.emplace_back(*static_cast<const uml::StateMachine*>(e));
  }
  for (auto _ : state) {
    for (const efsm::CompiledMachine& cm : machines) {
      const analysis::absint::MachineSummary summary =
          analysis::absint::analyze(cm);
      benchmark::DoNotOptimize(summary.at_state.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(machines.size()));
}
BENCHMARK(BM_AbsintFixpointTutmac)->Unit(benchmark::kMicrosecond);

/// Offset resolution alone: one cursor pass over the document.
void BM_SourceMapBuild(benchmark::State& state) {
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::SourceMap::build(xml).size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_SourceMapBuild)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
