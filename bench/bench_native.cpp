// Native backend benchmarks: the generated-code executor vs the bytecode
// interpreter on the same machines — per-step dispatch on the MiniSystem
// dsp/controller EFSMs, full TUTMAC end-to-end runs, and campaign sweep
// throughput. The native pairs are only registered when a C++ compiler is
// available on the host (the same probe `tut --backend=native` uses);
// without one the interpreter benches still run and a notice is printed.
// Medians and minimum speedups go into BENCH_native.json.
#include <cstdint>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "codegen/native.hpp"
#include "efsm/machine.hpp"
#include "efsm/program.hpp"
#include "fixtures.hpp"
#include "mapping/mapping.hpp"
#include "sim/campaign.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

// Same short-run regime as bench_campaign: the native backend's win is
// per-step dispatch, so e2e numbers deliberately keep the kernel share high
// rather than hiding it behind long horizons.
constexpr sim::Time kHorizon = 2'000'000;  // 2 ms of modelled time

void print_header() {
  bench::banner("A9: native backend — generated code vs bytecode interpreter");
  std::cout << "(per-step dispatch, TUTMAC e2e, campaign sweeps; 2 ms runs)\n";
}

// --- MiniSystem fixture (per-step microbenches) --------------------------

// The CompiledModel borrows the SystemView, so both live together for the
// process lifetime.
struct Mini {
  test::MiniSystem sys;
  std::unique_ptr<mapping::SystemView> view;
  std::shared_ptr<const sim::CompiledModel> model;
};

Mini& mini() {
  static Mini* fixture = [] {
    auto* m = new Mini;
    m->view = std::make_unique<mapping::SystemView>(m->sys.model);
    m->model = sim::CompiledModel::build(*m->view);
    return m;
  }();
  return *fixture;
}

std::shared_ptr<const codegen::NativeImage> mini_image() {
  static std::shared_ptr<const codegen::NativeImage> image =
      codegen::NativeImage::build(mini().model);
  return image;
}

// dsp1's Req@in self-loop: guardless, compute + assign + one send — the
// common-case transition shape. Interpreter and native do identical
// semantic work per deliver (including building the StepResult).
void BM_MiniStepBytecode(benchmark::State& state) {
  const sim::CompiledModel& model = *mini().model;
  const auto proc = static_cast<std::size_t>(model.proc_index("dsp1"));
  efsm::CompiledInstance inst(*model.procs()[proc].machine, "dsp1");
  inst.start();
  const efsm::Event ev{mini().sys.req, "in", {8}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.deliver(ev));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MiniStepBytecode);

void BM_MiniStepNative(benchmark::State& state) {
  const auto image = mini_image();
  const auto proc =
      static_cast<std::uint32_t>(mini().model->proc_index("dsp1"));
  const std::unique_ptr<sim::ProcExecutor> inst = image->make_executor(proc);
  inst->start();
  const efsm::Event ev{mini().sys.req, "in", {8}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->deliver(ev));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Controller's tick timer: timer dispatch plus a state re-entry running the
// on-entry set_timer — the path every periodic process hits.
void BM_MiniTimerBytecode(benchmark::State& state) {
  const sim::CompiledModel& model = *mini().model;
  const auto proc = static_cast<std::size_t>(model.proc_index("ctrl"));
  efsm::CompiledInstance inst(*model.procs()[proc].machine, "ctrl");
  inst.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.timer_fired("tick"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MiniTimerBytecode);

void BM_MiniTimerNative(benchmark::State& state) {
  const auto image = mini_image();
  const auto proc =
      static_cast<std::uint32_t>(mini().model->proc_index("ctrl"));
  const std::unique_ptr<sim::ProcExecutor> inst = image->make_executor(proc);
  inst->start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->timer_fired("tick"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// --- TUTMAC fixture (e2e and campaign benches) ---------------------------

tutmac::System& shared_system() {
  static tutmac::System sys = [] {
    tutmac::Options opt;
    opt.horizon = kHorizon;
    return tutmac::build(opt);
  }();
  return sys;
}

std::shared_ptr<const sim::CompiledModel> shared_image() {
  static std::shared_ptr<const sim::CompiledModel> image = [] {
    static const mapping::SystemView* view =
        new mapping::SystemView(*shared_system().model);
    return sim::CompiledModel::build(*view);
  }();
  return image;
}

std::shared_ptr<const codegen::NativeImage> shared_native() {
  static std::shared_ptr<const codegen::NativeImage> image =
      codegen::NativeImage::build(shared_image());
  return image;
}

void run_once(sim::Simulation& simulation, const sim::Config& config) {
  simulation.reset(config);
  tutmac::Options o = shared_system().options;
  o.horizon = config.horizon;
  shared_system().inject_workload(simulation, o);
  simulation.run();
  benchmark::DoNotOptimize(simulation.events_dispatched());
}

void BM_TutmacRunBytecode(benchmark::State& state) {
  sim::Config config;
  config.horizon = kHorizon;
  sim::Simulation simulation(shared_image(), config);
  for (auto _ : state) {
    run_once(simulation, config);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TutmacRunBytecode)->Unit(benchmark::kMicrosecond);

void BM_TutmacRunNative(benchmark::State& state) {
  sim::Config config;
  config.horizon = kHorizon;
  sim::Simulation simulation(
      std::shared_ptr<const sim::BackendImage>(shared_native()), config);
  for (auto _ : state) {
    run_once(simulation, config);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void setup_scenario(sim::Simulation& simulation, const sim::Scenario& sc) {
  const tutmac::System& sys = shared_system();
  tutmac::Options o = sys.options;
  o.horizon = simulation.config().horizon;
  o.slot_period = static_cast<sim::Time>(
      sc.param("slotPeriod", static_cast<long>(o.slot_period)));
  sys.inject_workload(simulation, o);
}

sim::CampaignSpec bench_spec() {
  sim::CampaignSpec spec;
  spec.name = "bench-native";
  spec.base.horizon = kHorizon;
  spec.axes.push_back({"seed", {}});
  for (std::uint64_t i = 0; i < 128; ++i) {
    spec.axes.back().values.push_back(static_cast<long>(i));
  }
  spec.axes.push_back({"slotPeriod", {50'000, 100'000}});
  return spec;
}

// Campaign throughput, single worker (the container is 1-CPU; thread
// scaling is bench_campaign's story). 256 scenarios per iteration.
void BM_CampaignBytecode(benchmark::State& state) {
  const sim::CampaignSpec spec = bench_spec();
  const sim::CampaignRunner runner({shared_image()}, setup_scenario);
  sim::CampaignOptions options;
  options.threads = 1;
  for (auto _ : state) {
    const sim::CampaignResult result = runner.run(spec, options);
    benchmark::DoNotOptimize(result.aggregate.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.total()));
}
BENCHMARK(BM_CampaignBytecode)->Unit(benchmark::kMillisecond);

void BM_CampaignNative(benchmark::State& state) {
  const sim::CampaignSpec spec = bench_spec();
  const sim::CampaignRunner runner(
      {std::shared_ptr<const sim::BackendImage>(shared_native())},
      setup_scenario);
  sim::CampaignOptions options;
  options.threads = 1;
  for (auto _ : state) {
    const sim::CampaignResult result = runner.run(spec, options);
    benchmark::DoNotOptimize(result.aggregate.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.total()));
}

}  // namespace

int main(int argc, char** argv) {
  if (codegen::NativeImage::find_compiler().empty()) {
    std::cout << "(no C++ compiler on this host: "
                 "native benchmarks not registered)\n";
  } else {
    benchmark::RegisterBenchmark("BM_MiniStepNative", BM_MiniStepNative);
    benchmark::RegisterBenchmark("BM_MiniTimerNative", BM_MiniTimerNative);
    benchmark::RegisterBenchmark("BM_TutmacRunNative", BM_TutmacRunNative)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("BM_CampaignNative", BM_CampaignNative)
        ->Unit(benchmark::kMillisecond);
  }
  return bench::run(argc, argv, print_header);
}
