// Shared helper for the bench binaries: every bench first prints the paper
// artifact it regenerates (table or figure), then runs its timing
// benchmarks. Pass --benchmark_filter=none to print artifacts only.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace tut::bench {

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Standard main body: print artifact via `print`, then run benchmarks.
template <typename PrintFn>
int run(int argc, char** argv, PrintFn print) {
  print();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tut::bench
