// Simulation-as-a-service benchmarks: cold vs warm request cost through the
// exact production path (serve::Engine::handle — the same function the
// daemon's connection workers call). A cold request pays the full pipeline
// (XML parse, UML lowering, CompiledModel::build, for native the dlopen);
// a warm request is a content-hash lookup + pooled Simulation::reset + run.
// The ratio is the daemon's reason to exist, pinned as a smoke gate in
// BENCH_serve.json (warm >= 20x cold on TUTMAC simulate).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codegen/native.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/resource.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"

using namespace tut;

namespace {

// A short, dense request: 0.15 ms horizon with compressed periods (periods
// are request parameters — campaign axes override them the same way), so
// all three environment streams fire while the pipeline cost dominates the
// cold side. The service exists for exactly this shape of traffic: many
// small what-if runs against one resident model.
constexpr sim::Time kHorizon = 150'000;
constexpr sim::Time kSlotPeriod = 15'000;
constexpr sim::Time kRxPeriod = 40'000;
constexpr sim::Time kMsduPeriod = 50'000;

struct Fixture {
  std::string xml;
  std::vector<serve::WorkloadEntry> workload;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    tutmac::Options opt;
    opt.horizon = kHorizon;
    const tutmac::System sys = tutmac::build(opt);
    Fixture out;
    out.xml = uml::to_xml_string(*sys.model);
    out.workload.resize(3);
    out.workload[0] = {"pphy", sys.radio_slot->name(), "slotPeriod",
                      kSlotPeriod, 0, {}};
    out.workload[1] = {"pphy", sys.rx_frame->name(), "rxPeriod",
                      kRxPeriod, 7'777, {256}};
    out.workload[2] = {"puser", sys.user_msdu->name(), "msduPeriod",
                      kMsduPeriod, 3'333, {512}};
    return out;
  }();
  return f;
}

std::string simulate_payload(serve::BackendChoice backend) {
  serve::SimulateRequest q;
  q.model_xml = fixture().xml;
  q.backend = backend;
  q.horizon = kHorizon;
  q.workload = fixture().workload;
  return q.encode();
}

serve::SimulateResponse decode_simulate(const std::string& response) {
  serve::wire::Reader r(serve::decode_response(response));
  return serve::SimulateResponse::decode(r);
}

void cold_loop(benchmark::State& state, serve::BackendChoice backend) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  const std::string payload = simulate_payload(backend);
  // Prime once outside timing: for native this compiles the .so, so the
  // timed cold iterations measure a cold *daemon cache* against a warm
  // on-disk object cache — the steady state a restarted daemon sees.
  engine.handle(payload);
  for (auto _ : state) {
    engine.cache().evict_all();
    const std::string resp = engine.handle(payload);
    benchmark::DoNotOptimize(resp.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void warm_loop(benchmark::State& state, serve::BackendChoice backend) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  const std::string payload = simulate_payload(backend);
  engine.handle(payload);
  for (auto _ : state) {
    const std::string resp = engine.handle(payload);
    benchmark::DoNotOptimize(resp.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ServeSimulateCold(benchmark::State& state) {
  cold_loop(state, serve::BackendChoice::Interpreter);
}
void BM_ServeSimulateWarm(benchmark::State& state) {
  warm_loop(state, serve::BackendChoice::Interpreter);
}
void BM_ServeSimulateColdNative(benchmark::State& state) {
  cold_loop(state, serve::BackendChoice::Native);
}
void BM_ServeSimulateWarmNative(benchmark::State& state) {
  warm_loop(state, serve::BackendChoice::Native);
}

void BM_ServeLintWarm(benchmark::State& state) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  serve::LintRequest q;
  q.model_xml = fixture().xml;
  const std::string payload = q.encode();
  engine.handle(payload);
  for (auto _ : state) {
    const std::string resp = engine.handle(payload);
    benchmark::DoNotOptimize(resp.data());
  }
}

void print_header() {
  bench::banner("serve: persistent daemon, cold vs warm requests");

  serve::Engine engine(sim::ResourceProfile::unbounded());
  const std::string payload =
      simulate_payload(serve::BackendChoice::Interpreter);

  using clock = std::chrono::steady_clock;
  const auto median_us = [](std::vector<double>& us) {
    std::sort(us.begin(), us.end());
    return us[us.size() / 2];
  };

  std::vector<double> cold_us, warm_us;
  std::uint64_t cold_digest = 0, warm_digest = 0;
  for (int i = 0; i < 20; ++i) {
    engine.cache().evict_all();
    const auto t0 = clock::now();
    const std::string resp = engine.handle(payload);
    cold_us.push_back(
        std::chrono::duration<double, std::micro>(clock::now() - t0).count());
    cold_digest = decode_simulate(resp).digest;
  }
  for (int i = 0; i < 200; ++i) {
    const auto t0 = clock::now();
    const std::string resp = engine.handle(payload);
    warm_us.push_back(
        std::chrono::duration<double, std::micro>(clock::now() - t0).count());
    warm_digest = decode_simulate(resp).digest;
  }

  const double cold = median_us(cold_us);
  const double warm = median_us(warm_us);
  std::cout << "TUTMAC simulate, 0.15 ms horizon (dense workload), "
               "interpreter backend\n"
            << "cold request (evicted cache): " << cold << " us ("
            << 1e6 / cold << " req/s)\n"
            << "warm request (content-hash hit): " << warm << " us ("
            << 1e6 / warm << " req/s)\n"
            << "warm speedup: " << cold / warm << "x — gate: >= 20x\n"
            << "digests byte-identical cold vs warm: "
            << (cold_digest == warm_digest ? "yes" : "NO — BUG") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("BM_ServeSimulateCold", BM_ServeSimulateCold)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("BM_ServeSimulateWarm", BM_ServeSimulateWarm)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_ServeLintWarm", BM_ServeLintWarm)
      ->Unit(benchmark::kMicrosecond);
  if (codegen::NativeImage::find_compiler().empty()) {
    std::cout << "(no C++ compiler on this host: "
                 "native serve benchmarks not registered)\n";
  } else {
    benchmark::RegisterBenchmark("BM_ServeSimulateColdNative",
                                 BM_ServeSimulateColdNative)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_ServeSimulateWarmNative",
                                 BM_ServeSimulateWarmNative)
        ->Unit(benchmark::kMicrosecond);
  }
  return bench::run(argc, argv, print_header);
}
