// Ablation A6: RTOS scheduling on the processors — cooperative
// run-to-completion (the paper's published system) vs preemptive priority
// scheduling with context-switch cost (the paper's stated future work:
// "real-time operating system will be used in system processors, which will
// also be accounted in the TUT-Profile").
//
// Metric: dispatch latency of the hard-real-time radio slot handler (rca,
// priority 3) when all software shares processor1 (the single-PE mapping
// maximizes interference from frag/mng/msduRec). Preemption should cut the
// rca tail latency at the cost of context-switch overhead.
#include "bench_util.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

struct LatencyStats {
  double mean = 0.0;
  sim::Time max = 0;
  std::uint64_t preemptions = 0;
  sim::Time overhead = 0;
};

/// Mean/max latency from each env RadioSlot send to the matching rca slot
/// run record (FIFO pairing).
LatencyStats run_policy(const std::string& scheduling, long ctx_cycles) {
  tutmac::Options opt;
  opt.horizon = 20'000'000;
  opt.mapping = tutmac::MappingChoice::SinglePe;  // maximize interference
  opt.scheduling = scheduling;
  opt.ctx_switch_cycles = ctx_cycles;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);

  std::vector<sim::Time> sends, runs;
  for (const auto& r : simulation->log().records()) {
    if (r.kind == sim::LogRecord::Kind::Send &&
        r.process == sim::kEnvironment && r.signal == "RadioSlot") {
      sends.push_back(r.time);
    }
    if (r.kind == sim::LogRecord::Kind::Run && r.process == "rca" &&
        r.cycles == opt.c_slot) {
      runs.push_back(r.time);
    }
  }
  LatencyStats stats;
  const std::size_t n = std::min(sends.size(), runs.size());
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const sim::Time lat = runs[i] - sends[i];
    total += static_cast<double>(lat);
    stats.max = std::max(stats.max, lat);
  }
  stats.mean = n > 0 ? total / static_cast<double>(n) : 0.0;
  for (const auto& [pe, s] : simulation->pe_stats()) {
    stats.preemptions += s.preemptions;
    stats.overhead += s.overhead_time;
  }
  return stats;
}

void print_ablation() {
  bench::banner("A6: RTOS scheduling ablation (rca slot dispatch latency,"
                " single-PE mapping)");
  std::printf("%-28s %12s %12s %12s %14s\n", "policy", "mean (ns)", "max (ns)",
              "preemptions", "overhead (ns)");
  struct Case {
    const char* label;
    const char* policy;
    long ctx;
  };
  for (const Case& c :
       {Case{"cooperative (paper)", profile::tags::SchedulingCooperative, 0},
        Case{"preemptive, free switch", profile::tags::SchedulingPreemptive, 0},
        Case{"preemptive, 80-cycle switch", profile::tags::SchedulingPreemptive,
             80},
        Case{"preemptive, 800-cycle switch",
             profile::tags::SchedulingPreemptive, 800}}) {
    const LatencyStats s = run_policy(c.policy, c.ctx);
    std::printf("%-28s %12.0f %12llu %12llu %14llu\n", c.label, s.mean,
                static_cast<unsigned long long>(s.max),
                static_cast<unsigned long long>(s.preemptions),
                static_cast<unsigned long long>(s.overhead));
  }
  std::printf("(preemption bounds the high-priority handler's latency; the\n"
              " context-switch cost is the price, visible as overhead)\n");
}

void BM_TutmacCooperative(benchmark::State& state) {
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  opt.mapping = tutmac::MappingChoice::SinglePe;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.simulate(view));
  }
}
BENCHMARK(BM_TutmacCooperative)->Unit(benchmark::kMillisecond);

void BM_TutmacPreemptive(benchmark::State& state) {
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  opt.mapping = tutmac::MappingChoice::SinglePe;
  opt.scheduling = profile::tags::SchedulingPreemptive;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.simulate(view));
  }
}
BENCHMARK(BM_TutmacPreemptive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_ablation);
}
