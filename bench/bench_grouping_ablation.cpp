// Ablation A2: process grouping strategies (Section 3.1 grouping criteria).
// Compares the paper's communication-minimizing grouping against one group
// per process and one coarse software group, measuring inter-group signal
// traffic and bus load under the same workload.
#include "bench_util.hpp"
#include "explore/explore.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

struct Result {
  std::string name;
  std::size_t groups = 0;
  std::uint64_t inter_group = 0;
  std::uint64_t bus_transfers = 0;
  sim::Time bus_busy = 0;
};

Result run_grouping(const std::string& name, tutmac::GroupingChoice choice,
                    tutmac::MappingChoice mapping_choice) {
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  opt.grouping = choice;
  opt.mapping = mapping_choice;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());

  Result r;
  r.name = name;
  r.groups = info.groups.size();
  r.inter_group = report.inter_group_signals();
  for (const auto& [seg, stats] : simulation->segment_stats()) {
    r.bus_transfers += stats.transfers;
    r.bus_busy += stats.busy_time;
  }
  return r;
}

void print_ablation() {
  bench::banner("A2: grouping strategy ablation (10 ms TUTMAC workload)");
  std::printf("%-34s %7s %12s %14s %12s\n", "grouping / mapping", "groups",
              "inter-group", "bus transfers", "bus busy");
  for (const Result& r :
       {run_grouping("paper (fig 6) / paper (fig 8)",
                     tutmac::GroupingChoice::Paper,
                     tutmac::MappingChoice::Paper),
        run_grouping("per-process / load-balanced",
                     tutmac::GroupingChoice::PerProcess,
                     tutmac::MappingChoice::LoadBalanced),
        run_grouping("single sw group / single PE",
                     tutmac::GroupingChoice::SingleSw,
                     tutmac::MappingChoice::SinglePe)}) {
    std::printf("%-34s %7zu %12llu %14llu %12llu\n", r.name.c_str(), r.groups,
                static_cast<unsigned long long>(r.inter_group),
                static_cast<unsigned long long>(r.bus_transfers),
                static_cast<unsigned long long>(r.bus_busy));
  }
  std::printf("(the paper's grouping keeps hot paths inside groups; the\n"
              " single-PE variant trades bus traffic for one saturated CPU)\n");
}

void BM_AutomaticGroupingProposal(benchmark::State& state) {
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());
  const auto stats = explore::ProcessStats::from_report(report);
  std::map<std::string, std::string> types;
  for (const auto& p : stats.processes) types[p] = "general";
  types["crc"] = "hardware";
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore::propose_grouping(stats, types, 4));
  }
}
BENCHMARK(BM_AutomaticGroupingProposal)->Unit(benchmark::kMicrosecond);

void BM_InterGroupObjective(benchmark::State& state) {
  explore::ProcessStats stats;
  const int n = static_cast<int>(state.range(0));
  explore::Grouping grouping;
  for (int i = 0; i < n; ++i) {
    const std::string p = "p" + std::to_string(i);
    stats.processes.push_back(p);
    stats.cycles[p] = 100 * i;
    grouping.push_back({p});
    if (i > 0) stats.signals[{p, "p" + std::to_string(i - 1)}] = 10;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore::inter_group_signals(grouping, stats));
  }
}
BENCHMARK(BM_InterGroupObjective)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_ablation);
}
