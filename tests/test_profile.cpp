// Tests for the TUT-Profile definition (Tables 1-3) and its design rules.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "profile/tut_profile.hpp"
#include "uml/serialize.hpp"

using namespace tut;
using namespace tut::profile;

namespace {

struct Installed : ::testing::Test {
  uml::Model model{"m"};
  TutProfile p = install(model);
};

}  // namespace

TEST_F(Installed, HasAllElevenStereotypesPlusHibi) {
  ASSERT_NE(p.profile, nullptr);
  EXPECT_EQ(p.profile->name(), "TUT-Profile");
  EXPECT_EQ(p.profile->stereotypes().size(), 13u);  // 11 + 2 HIBI
  for (const uml::Stereotype* s : p.all()) ASSERT_NE(s, nullptr);
}

TEST_F(Installed, Table1MetaclassAssignments) {
  using uml::ElementKind;
  EXPECT_EQ(p.application->extended_metaclass(), ElementKind::Class);
  EXPECT_EQ(p.application_component->extended_metaclass(), ElementKind::Class);
  EXPECT_EQ(p.application_process->extended_metaclass(), ElementKind::Property);
  EXPECT_EQ(p.process_group->extended_metaclass(), ElementKind::Property);
  EXPECT_EQ(p.process_grouping->extended_metaclass(), ElementKind::Dependency);
  EXPECT_EQ(p.platform->extended_metaclass(), ElementKind::Class);
  EXPECT_EQ(p.component->extended_metaclass(), ElementKind::Class);
  EXPECT_EQ(p.component_instance->extended_metaclass(), ElementKind::Property);
  EXPECT_EQ(p.communication_wrapper->extended_metaclass(),
            ElementKind::Connector);
  EXPECT_EQ(p.communication_segment->extended_metaclass(),
            ElementKind::Property);
  EXPECT_EQ(p.mapping->extended_metaclass(), ElementKind::Dependency);
}

struct TagSpec {
  const char* stereotype;
  const char* tag;
  uml::TagType type;
};

class Table2And3Tags : public ::testing::TestWithParam<TagSpec> {};

TEST_P(Table2And3Tags, Declared) {
  uml::Model model{"m"};
  TutProfile p = install(model);
  const uml::Stereotype* st = p.profile->stereotype(GetParam().stereotype);
  ASSERT_NE(st, nullptr) << GetParam().stereotype;
  const uml::TagDefinition* def = st->tag(GetParam().tag);
  ASSERT_NE(def, nullptr) << GetParam().tag;
  EXPECT_EQ(def->type, GetParam().type);
  EXPECT_FALSE(def->description.empty());
}

INSTANTIATE_TEST_SUITE_P(
    PaperTables, Table2And3Tags,
    ::testing::Values(
        // Table 2 — application stereotypes.
        TagSpec{"Application", "Priority", uml::TagType::Integer},
        TagSpec{"Application", "CodeMemory", uml::TagType::Integer},
        TagSpec{"Application", "DataMemory", uml::TagType::Integer},
        TagSpec{"Application", "RealTimeType", uml::TagType::Enum},
        TagSpec{"ApplicationComponent", "CodeMemory", uml::TagType::Integer},
        TagSpec{"ApplicationComponent", "DataMemory", uml::TagType::Integer},
        TagSpec{"ApplicationComponent", "RealTimeType", uml::TagType::Enum},
        TagSpec{"ApplicationProcess", "Priority", uml::TagType::Integer},
        TagSpec{"ApplicationProcess", "CodeMemory", uml::TagType::Integer},
        TagSpec{"ApplicationProcess", "DataMemory", uml::TagType::Integer},
        TagSpec{"ApplicationProcess", "RealTimeType", uml::TagType::Enum},
        TagSpec{"ApplicationProcess", "ProcessType", uml::TagType::Enum},
        TagSpec{"ProcessGroup", "Fixed", uml::TagType::Boolean},
        TagSpec{"ProcessGroup", "ProcessType", uml::TagType::Enum},
        TagSpec{"ProcessGrouping", "Fixed", uml::TagType::Boolean},
        // Table 3 — platform stereotypes.
        TagSpec{"Component", "Type", uml::TagType::Enum},
        TagSpec{"Component", "Area", uml::TagType::Real},
        TagSpec{"Component", "Power", uml::TagType::Real},
        TagSpec{"ComponentInstance", "Priority", uml::TagType::Integer},
        TagSpec{"ComponentInstance", "ID", uml::TagType::Integer},
        TagSpec{"ComponentInstance", "IntMemory", uml::TagType::Integer},
        TagSpec{"CommunicationSegment", "DataWidth", uml::TagType::Integer},
        TagSpec{"CommunicationSegment", "Frequency", uml::TagType::Integer},
        TagSpec{"CommunicationSegment", "Arbitration", uml::TagType::Enum},
        TagSpec{"CommunicationWrapper", "Address", uml::TagType::Integer},
        TagSpec{"CommunicationWrapper", "BufferSize", uml::TagType::Integer},
        TagSpec{"CommunicationWrapper", "MaxTime", uml::TagType::Integer},
        // HIBI specializations inherit the base tags.
        TagSpec{"HIBISegment", "DataWidth", uml::TagType::Integer},
        TagSpec{"HIBISegment", "Arbitration", uml::TagType::Enum},
        TagSpec{"HIBIWrapper", "Address", uml::TagType::Integer},
        TagSpec{"HIBIWrapper", "MaxTime", uml::TagType::Integer}),
    [](const auto& info) {
      return std::string(info.param.stereotype) + "_" + info.param.tag;
    });

TEST_F(Installed, HibiSpecializationHierarchy) {
  EXPECT_EQ(p.hibi_segment->general(), p.communication_segment);
  EXPECT_EQ(p.hibi_wrapper->general(), p.communication_wrapper);
  EXPECT_TRUE(p.hibi_segment->is_kind_of(*p.communication_segment));
  EXPECT_EQ(p.hibi_wrapper->extended_metaclass(), uml::ElementKind::Connector);
}

TEST_F(Installed, ComponentInstanceIdIsRequired) {
  const uml::TagDefinition* id = p.component_instance->tag("ID");
  ASSERT_NE(id, nullptr);
  EXPECT_TRUE(id->required);
}

TEST_F(Installed, RealTimeTypeEnumerators) {
  const uml::TagDefinition* rtt = p.application->tag("RealTimeType");
  ASSERT_NE(rtt, nullptr);
  EXPECT_EQ(rtt->enumerators,
            (std::vector<std::string>{"hard", "soft", "none"}));
}

TEST_F(Installed, FindLocatesInstalledProfile) {
  const TutProfile found = find(model);
  EXPECT_EQ(found.profile, p.profile);
  EXPECT_EQ(found.mapping, p.mapping);
  EXPECT_EQ(found.hibi_wrapper, p.hibi_wrapper);
}

TEST(ProfileFind, ThrowsWithoutProfile) {
  uml::Model model{"m"};
  EXPECT_THROW((void)find(model), std::runtime_error);
}

TEST(ProfileFind, SurvivesSerializationRoundTrip) {
  test::MiniSystem sys;
  const auto restored = uml::from_xml_string(uml::to_xml_string(sys.model));
  const TutProfile found = find(*restored);
  EXPECT_EQ(found.profile->stereotypes().size(), 13u);
  EXPECT_EQ(found.hibi_segment->general(), found.communication_segment);
}

// ---------------------------------------------------------------------------
// Design rules on the well-formed fixture
// ---------------------------------------------------------------------------

TEST(DesignRules, MiniSystemIsClean) {
  test::MiniSystem sys;
  const auto result = make_validator().run(sys.model);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_EQ(result.warning_count(), 0u) << result.to_string();
}

TEST(DesignRules, MiniSystemValidatesAfterRoundTrip) {
  test::MiniSystem sys;
  const auto restored = uml::from_xml_string(uml::to_xml_string(sys.model));
  const auto result = make_validator().run(*restored);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

namespace {

bool has_rule(const uml::ValidationResult& r, const std::string& rule) {
  for (const auto& d : r.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

}  // namespace

TEST(DesignRules, PassiveApplicationComponentIsAnError) {
  test::MiniSystem sys;
  auto& bad = sys.model.create_class("Passive");  // not active
  bad.apply(*sys.prof.application_component);
  const auto r = make_validator().run(sys.model);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "tut.component.active")) << r.to_string();
}

TEST(DesignRules, ActiveApplicationClassIsAnError) {
  test::MiniSystem sys;
  // A second <<Application>> that is also active: both unique and passive
  // rules fire.
  auto& bad = sys.model.create_class("App2", nullptr, /*active=*/true);
  bad.apply(*sys.prof.application);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.application.unique"));
  EXPECT_TRUE(has_rule(r, "tut.application.passive"));
}

TEST(DesignRules, ProcessMustInstantiateComponent) {
  test::MiniSystem sys;
  auto& passive = sys.model.create_class("Plain");
  auto& part = sys.model.add_part(*sys.app, "rogue", passive);
  part.apply(*sys.prof.application_process);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.process.type"));
}

TEST(DesignRules, UngroupedProcessIsAWarning) {
  test::MiniSystem sys;
  auto& part = sys.model.add_part(*sys.app, "lone", *sys.ctrl_comp);
  part.apply(*sys.prof.application_process, {{"ProcessType", "general"}});
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(has_rule(r, "tut.grouping.unique"));
}

TEST(DesignRules, DoubleGroupingIsAnError) {
  test::MiniSystem sys;
  appmodel::ApplicationBuilder ab(sys.model, sys.prof);
  // ctrl is already in g_ctrl; add it to g_dsp too.
  sys.model
      .create_dependency("dup", *sys.ctrl, *sys.group_dsp)
      .apply(*sys.prof.process_grouping);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.grouping.unique"));
  EXPECT_FALSE(r.ok());
}

TEST(DesignRules, HeterogeneousGroupIsAnError) {
  test::MiniSystem sys;
  // dsp-typed process into the general group.
  sys.model
      .create_dependency("bad", *sys.dsp1, *sys.group_ctrl)
      .apply(*sys.prof.process_grouping);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.group.homogeneous"));
}

TEST(DesignRules, GroupingEndsChecked) {
  test::MiniSystem sys;
  sys.model
      .create_dependency("bad", *sys.app, *sys.group_ctrl)
      .apply(*sys.prof.process_grouping);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.grouping.ends"));
}

TEST(DesignRules, DuplicateInstanceIdIsAnError) {
  test::MiniSystem sys;
  platform::PlatformBuilder pb(sys.model, sys.prof);
  // Bypass the builder's auto-id to force a collision with cpu1 (ID=1).
  auto& part = sys.model.add_part(*sys.plat, "clone", *sys.cpu_type);
  part.apply(*sys.prof.component_instance, {{"ID", "1"}});
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.instance.id"));
}

TEST(DesignRules, MissingInstanceIdIsAnError) {
  test::MiniSystem sys;
  auto& part = sys.model.add_part(*sys.plat, "noid", *sys.cpu_type);
  part.apply(*sys.prof.component_instance);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "uml.tag.required"));
}

TEST(DesignRules, WrapperMustJoinInstanceAndSegment) {
  test::MiniSystem sys;
  // Stereotype the seg1-bridge link as a wrapper: both ends are segments.
  auto& bad = sys.model.connect(*sys.plat, "seg1", "conn", "bridge", "conn");
  bad.apply(*sys.prof.communication_wrapper);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.wrapper.ends"));
}

TEST(DesignRules, DuplicateWrapperAddressOnSameSegment) {
  test::MiniSystem sys;
  platform::PlatformBuilder pb2(sys.model, sys.prof);
  // Manually add a wrapper with cpu2's address (auto addresses were 0,1).
  auto& conn = sys.model.connect(*sys.plat, "acc", "bus", "seg1", "conn");
  conn.apply(*sys.prof.hibi_wrapper, {{"Address", "1"}});
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.wrapper.address"));
}

TEST(DesignRules, UnmappedGroupIsAnError) {
  test::MiniSystem sys;
  appmodel::ApplicationBuilder ab(sys.model, sys.prof);
  // Bypassing builder state: create a fresh group part directly.
  auto& g = sys.model.add_part(*sys.app, "g_extra",
                               *sys.group_ctrl->part_type());
  g.apply(*sys.prof.process_group);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.mapping.total"));
}

TEST(DesignRules, DoubleMappingIsAnError) {
  test::MiniSystem sys;
  mapping::MappingBuilder mb(sys.model, sys.prof);
  mb.map(*sys.group_ctrl, *sys.cpu2);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.mapping.total"));
}

TEST(DesignRules, HardwareGroupOnCpuIsAnError) {
  test::MiniSystem sys;
  mapping::MappingBuilder mb(sys.model, sys.prof);
  // Remove is not supported; instead map a new hw group to a cpu.
  auto& g = sys.model.add_part(*sys.app, "g_hw2",
                               *sys.group_hw->part_type());
  g.apply(*sys.prof.process_group, {{"ProcessType", "hardware"}});
  mb.map(g, *sys.cpu1);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.mapping.type"));
}

TEST(DesignRules, DspGroupOnGeneralCpuIsAWarning) {
  test::MiniSystem sys;
  mapping::MappingBuilder mb(sys.model, sys.prof);
  auto& g = sys.model.add_part(*sys.app, "g_dsp2",
                               *sys.group_dsp->part_type());
  g.apply(*sys.prof.process_group, {{"ProcessType", "dsp"}});
  mb.map(g, *sys.cpu1);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning only
  EXPECT_TRUE(has_rule(r, "tut.mapping.type"));
}

TEST(DesignRules, MappingEndsChecked) {
  test::MiniSystem sys;
  sys.model.create_dependency("bad", *sys.ctrl, *sys.cpu1)
      .apply(*sys.prof.mapping);
  const auto r = make_validator().run(sys.model);
  EXPECT_TRUE(has_rule(r, "tut.mapping.ends"));
}
