// Tests for the TUTMAC/TUTWLAN case study: model structure (Figures 4-8),
// validation, simulation, and the Table 4 reproduction shape.
#include <gtest/gtest.h>

#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"
#include "uml/validation.hpp"

using namespace tut;
using namespace tut::tutmac;

namespace {

struct BuiltSystem : ::testing::Test {
  System sys = build();
};

}  // namespace

TEST_F(BuiltSystem, Figure4ClassHierarchy) {
  EXPECT_TRUE(sys.app->has_stereotype("Application"));
  EXPECT_FALSE(sys.app->is_active());
  // Three top-level functional components.
  for (const char* name : {"Management", "RadioManagement",
                           "RadioChannelAccess"}) {
    const uml::Class* cls = sys.model->find_class(name);
    ASSERT_NE(cls, nullptr) << name;
    EXPECT_TRUE(cls->has_stereotype("ApplicationComponent")) << name;
    EXPECT_TRUE(cls->is_active()) << name;
    EXPECT_NE(cls->behavior(), nullptr) << name;
  }
  // Two structural components, not stereotyped, passive.
  for (const char* name : {"UserInterface", "DataProcessing"}) {
    const uml::Class* cls = sys.model->find_class(name);
    ASSERT_NE(cls, nullptr) << name;
    EXPECT_FALSE(cls->has_stereotype("ApplicationComponent")) << name;
    EXPECT_FALSE(cls->is_active()) << name;
  }
}

TEST_F(BuiltSystem, Figure5CompositeStructure) {
  // The top-level class has ui, dp parts plus the three processes.
  EXPECT_NE(sys.app->part("ui"), nullptr);
  EXPECT_NE(sys.app->part("dp"), nullptr);
  EXPECT_NE(sys.app->part("rca"), nullptr);
  EXPECT_EQ(sys.app->parts().size(), 5u);
  // Boundary ports.
  EXPECT_NE(sys.app->port("puser"), nullptr);
  EXPECT_NE(sys.app->port("pphy"), nullptr);
  EXPECT_GE(sys.app->connectors().size(), 9u);
}

TEST_F(BuiltSystem, Figure6Grouping) {
  ASSERT_EQ(sys.groups.size(), 4u);
  appmodel::ApplicationView view(*sys.model);
  EXPECT_EQ(view.processes().size(), 7u);
  EXPECT_EQ(view.members(*sys.groups.at("group1")).size(), 2u);  // rca, rmng
  EXPECT_EQ(view.members(*sys.groups.at("group2")).size(), 2u);
  EXPECT_EQ(view.members(*sys.groups.at("group3")).size(), 2u);
  EXPECT_EQ(view.members(*sys.groups.at("group4")).size(), 1u);  // crc
  EXPECT_EQ(view.group_of(*sys.processes.at("rca")), sys.groups.at("group1"));
  EXPECT_EQ(view.group_of(*sys.processes.at("crc")), sys.groups.at("group4"));
  EXPECT_EQ(sys.groups.at("group4")->tagged_value("ProcessType"), "hardware");
}

TEST_F(BuiltSystem, Figure7Platform) {
  platform::PlatformView view(*sys.model);
  EXPECT_EQ(view.instances().size(), 4u);
  EXPECT_EQ(view.segments().size(), 3u);
  // Hierarchical bus: p1/p2 on segment1, p3/acc on segment2, joined by the
  // bridge.
  EXPECT_EQ(view.segment_of(*sys.instances.at("processor1")),
            sys.segments.at("hibisegment1"));
  EXPECT_EQ(view.segment_of(*sys.instances.at("accelerator1")),
            sys.segments.at("hibisegment2"));
  const auto route = view.route(*sys.instances.at("processor1"),
                                *sys.instances.at("accelerator1"));
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[1], sys.segments.at("bridge"));
  // HIBI stereotypes applied.
  EXPECT_TRUE(sys.segments.at("hibisegment1")->has_stereotype("HIBISegment"));
}

TEST_F(BuiltSystem, Figure8Mapping) {
  mapping::SystemView view(*sys.model);
  EXPECT_EQ(view.instance_for_group(*sys.groups.at("group1")),
            sys.instances.at("processor1"));
  EXPECT_EQ(view.instance_for_group(*sys.groups.at("group3")),
            sys.instances.at("processor1"));  // two groups on processor1
  EXPECT_EQ(view.instance_for_group(*sys.groups.at("group2")),
            sys.instances.at("processor2"));
  EXPECT_EQ(view.instance_for_group(*sys.groups.at("group4")),
            sys.instances.at("accelerator1"));
  // processor3 is present but idle in the paper's mapping.
  EXPECT_TRUE(view.groups_on(*sys.instances.at("processor3")).empty());
  EXPECT_TRUE(view.mapping_fixed(*sys.groups.at("group1")));
}

TEST_F(BuiltSystem, PassesAllDesignRules) {
  const auto result = profile::make_validator().run(*sys.model);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_EQ(result.warning_count(), 0u) << result.to_string();
}

TEST_F(BuiltSystem, SurvivesXmlRoundTrip) {
  const auto restored = uml::from_xml_string(uml::to_xml_string(*sys.model));
  EXPECT_EQ(restored->size(), sys.model->size());
  const auto result = profile::make_validator().run(*restored);
  EXPECT_TRUE(result.ok()) << result.to_string();
  mapping::SystemView view(*restored);
  EXPECT_EQ(view.app().processes().size(), 7u);
  EXPECT_EQ(view.plat().instances().size(), 4u);
}

TEST(TutmacVariants, AlternativeGroupingsValidate) {
  for (GroupingChoice g : {GroupingChoice::PerProcess,
                           GroupingChoice::SingleSw}) {
    Options opt;
    opt.grouping = g;
    System sys = build(opt);
    const auto result = profile::make_validator().run(*sys.model);
    EXPECT_TRUE(result.ok()) << result.to_string();
  }
}

TEST(TutmacVariants, AlternativeMappingsValidate) {
  for (MappingChoice c : {MappingChoice::LoadBalanced, MappingChoice::SinglePe}) {
    Options opt;
    opt.mapping = c;
    System sys = build(opt);
    const auto result = profile::make_validator().run(*sys.model);
    EXPECT_TRUE(result.ok()) << result.to_string();
  }
}

TEST(TutmacVariants, RoundRobinArbitrationValidates) {
  Options opt;
  opt.arbitration = profile::tags::ArbitrationRoundRobin;
  System sys = build(opt);
  const auto result = profile::make_validator().run(*sys.model);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_EQ(sys.segments.at("hibisegment1")->tagged_value("Arbitration"),
            "round-robin");
}

// ---------------------------------------------------------------------------
// Simulation + profiling: the Table 4 shape.
// ---------------------------------------------------------------------------

namespace {

profiler::ProfilingReport profile_run(const Options& opt) {
  System sys = build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  return profiler::analyze(info, simulation->log());
}

}  // namespace

TEST(TutmacSimulation, ShortRunProducesTraffic) {
  Options opt;
  opt.horizon = 5'000'000;  // 5 ms
  System sys = build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  EXPECT_GT(simulation->log().size(), 100u);
  // The radio path executed.
  EXPECT_GT(simulation->instance("rca").variable("slotcnt"), 10);
  // Cross-bridge CRC traffic happened.
  EXPECT_GT(simulation->segment_stats().at("bridge").transfers, 0u);
}

TEST(TutmacSimulation, Table4ShapeReproduced) {
  Options opt;
  opt.horizon = 20'000'000;  // 20 ms is enough for stable proportions
  const auto report = profile_run(opt);

  ASSERT_EQ(report.execution.size(), 5u);  // 4 groups + Environment
  const auto& g1 = report.execution[0];
  const auto& g2 = report.execution[1];
  const auto& g3 = report.execution[2];
  const auto& g4 = report.execution[3];
  const auto& env = report.execution[4];

  EXPECT_EQ(g1.group, "group1");
  // Paper: 92.1 / 5.2 / 2.5 / 0.2 / 0.0. Require the shape, with slack.
  EXPECT_GT(g1.proportion, 85.0);
  EXPECT_LT(g1.proportion, 97.0);
  EXPECT_GT(g2.proportion, 2.0);
  EXPECT_LT(g2.proportion, 10.0);
  EXPECT_GT(g3.proportion, 1.0);
  EXPECT_LT(g3.proportion, 8.0);
  EXPECT_GT(g4.proportion, 0.01);
  EXPECT_LT(g4.proportion, 1.5);
  EXPECT_EQ(env.cycles, 0);
  // Ordering matches the paper: g1 > g2 > g3 > g4.
  EXPECT_GT(g1.cycles, g2.cycles);
  EXPECT_GT(g2.cycles, g3.cycles);
  EXPECT_GT(g3.cycles, g4.cycles);
}

TEST(TutmacSimulation, SignalMatrixShape) {
  Options opt;
  opt.horizon = 20'000'000;
  const auto report = profile_run(opt);

  const auto g1 = report.party_index("group1");
  const auto g2 = report.party_index("group2");
  const auto g3 = report.party_index("group3");
  const auto g4 = report.party_index("group4");
  const auto env = report.party_index(profiler::kEnvironmentParty);

  // The environment drives group1 (radio slots + frames) hardest.
  EXPECT_GT(report.signals[env][g1], report.signals[env][g2]);
  // Data path: group2 -> group3 (MSDUs to fragmenter) and group3 -> group1
  // (fragments to rca), group3 <-> group4 (CRC).
  EXPECT_GT(report.signals[g2][g3], 0u);
  EXPECT_GT(report.signals[g3][g1], 0u);
  EXPECT_GT(report.signals[g3][g4], 0u);
  EXPECT_EQ(report.signals[g3][g4], report.signals[g4][g3]);  // req/rsp pairs
  // group1 reports status to itself (rca -> rmng are both group1).
  EXPECT_GT(report.signals[g1][g1], 0u);
  // group4 never talks to group2 directly.
  EXPECT_EQ(report.signals[g4][g2], 0u);
  EXPECT_EQ(report.signals[g2][g4], 0u);
}

TEST(TutmacSimulation, DeterministicReport) {
  Options opt;
  opt.horizon = 5'000'000;
  const auto a = profile_run(opt);
  const auto b = profile_run(opt);
  EXPECT_EQ(a.to_text(), b.to_text());
}

TEST(TutmacSimulation, NoDroppedSignals) {
  Options opt;
  opt.horizon = 10'000'000;
  const auto report = profile_run(opt);
  EXPECT_TRUE(report.drops.empty());
}
