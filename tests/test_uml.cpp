// Unit tests for the UML metamodel subset: factories, structure, state
// machines, profile machinery and the core validator.
#include <gtest/gtest.h>

#include "uml/model.hpp"
#include "uml/validation.hpp"

using namespace tut::uml;

namespace {

/// Builds a tiny two-part system: Producer --> Consumer via ports.
struct TinyModel {
  Model model{"tiny"};
  Signal* data = nullptr;
  Class* producer = nullptr;
  Class* consumer = nullptr;
  Class* top = nullptr;

  TinyModel() {
    data = &model.create_signal("Data");
    data->add_parameter("payload", "int");

    producer = &model.create_class("Producer", nullptr, /*active=*/true);
    model.add_port(*producer, "out").require(*data);

    consumer = &model.create_class("Consumer", nullptr, /*active=*/true);
    model.add_port(*consumer, "in").provide(*data);

    top = &model.create_class("Top");
    model.add_part(*top, "p", *producer);
    model.add_part(*top, "c", *consumer);
    model.connect(*top, "p", "out", "c", "in");
  }
};

}  // namespace

TEST(UmlModel, AssignsUniqueIdsAndOwners) {
  TinyModel t;
  EXPECT_NE(t.data->id(), t.producer->id());
  EXPECT_EQ(t.producer->owner(), &t.model);
  EXPECT_EQ(t.top->parts()[0]->owner(), t.top);
  EXPECT_EQ(t.model.find(t.producer->id()), t.producer);
  EXPECT_EQ(t.model.find("no-such-id"), nullptr);
}

TEST(UmlModel, QualifiedNames) {
  TinyModel t;
  EXPECT_EQ(t.producer->qualified_name(), "Producer");
  EXPECT_EQ(t.top->parts()[0]->qualified_name(), "Top.p");
  EXPECT_EQ(t.producer->ports()[0]->qualified_name(), "Producer.out");
}

TEST(UmlModel, FindByKindAndName) {
  TinyModel t;
  EXPECT_EQ(t.model.find_class("Consumer"), t.consumer);
  EXPECT_EQ(t.model.find_class("Nope"), nullptr);
  EXPECT_EQ(t.model.find_signal("Data"), t.data);
  EXPECT_EQ(t.model.elements_of_kind(ElementKind::Class).size(), 3u);
}

TEST(UmlStructure, PartsAndPortsResolveByName) {
  TinyModel t;
  ASSERT_NE(t.top->part("p"), nullptr);
  EXPECT_EQ(t.top->part("p")->part_type(), t.producer);
  EXPECT_TRUE(t.top->part("p")->is_part());
  ASSERT_NE(t.producer->port("out"), nullptr);
  EXPECT_TRUE(t.producer->port("out")->requires_signal(*t.data));
  EXPECT_TRUE(t.consumer->port("in")->provides(*t.data));
  EXPECT_FALSE(t.consumer->port("in")->requires_signal(*t.data));
}

TEST(UmlStructure, AttributesAreNotParts) {
  TinyModel t;
  auto& attr = t.model.add_attribute(*t.consumer, "count", "int");
  EXPECT_FALSE(attr.is_part());
  EXPECT_EQ(attr.attr_type(), "int");
  EXPECT_EQ(t.consumer->attributes().size(), 1u);
}

TEST(UmlStructure, ConnectorEndsResolve) {
  TinyModel t;
  ASSERT_EQ(t.top->connectors().size(), 1u);
  const Connector* c = t.top->connectors()[0];
  EXPECT_EQ(c->end0().part, t.top->part("p"));
  EXPECT_EQ(c->end0().port, t.producer->port("out"));
  EXPECT_EQ(c->end1().part, t.top->part("c"));
}

TEST(UmlStructure, ConnectUnknownNamesThrows) {
  TinyModel t;
  EXPECT_THROW(t.model.connect(*t.top, "zzz", "out", "c", "in"),
               std::invalid_argument);
  EXPECT_THROW(t.model.connect(*t.top, "p", "zzz", "c", "in"),
               std::invalid_argument);
  EXPECT_THROW(t.model.connect_boundary(*t.top, "noport", "p", "out"),
               std::invalid_argument);
}

TEST(UmlStructure, BoundaryConnector) {
  TinyModel t;
  t.model.add_port(*t.top, "ext").provide(*t.data);
  auto& conn = t.model.connect_boundary(*t.top, "ext", "c", "in");
  EXPECT_EQ(conn.end0().part, nullptr);
  EXPECT_EQ(conn.end0().port, t.top->port("ext"));
  EXPECT_EQ(conn.end1().part, t.top->part("c"));
}

TEST(UmlStructure, SignalPayloadDefaultsFromParameters) {
  TinyModel t;
  EXPECT_EQ(t.data->payload_bytes(), 8u);  // 4 header + 4 per parameter
  t.data->set_payload_bytes(1500);
  EXPECT_EQ(t.data->payload_bytes(), 1500u);
}

TEST(UmlStateMachine, BuildAndQuery) {
  TinyModel t;
  auto& sm = t.model.create_behavior(*t.producer);
  EXPECT_EQ(t.producer->behavior(), &sm);
  EXPECT_EQ(sm.context(), t.producer);
  // create_behavior is idempotent.
  EXPECT_EQ(&t.model.create_behavior(*t.producer), &sm);

  auto& idle = t.model.add_state(sm, "Idle", /*initial=*/true);
  auto& busy = t.model.add_state(sm, "Busy");
  sm.declare_variable("n", 3);

  auto& tr = t.model.add_transition(sm, idle, busy, *t.data, "out");
  tr.set_guard("n > 0");
  tr.add_effect(Action::assign("n", "n - 1"));
  tr.add_effect(Action::send("out", *t.data, {"n"}));
  t.model.add_timer_transition(sm, busy, idle, "t1");

  EXPECT_EQ(sm.initial_state(), &idle);
  EXPECT_EQ(sm.state("Busy"), &busy);
  EXPECT_EQ(sm.state("Nope"), nullptr);
  ASSERT_EQ(sm.outgoing(idle).size(), 1u);
  EXPECT_EQ(sm.outgoing(idle)[0]->trigger_signal(), t.data);
  EXPECT_FALSE(sm.outgoing(idle)[0]->is_completion());
  EXPECT_EQ(sm.outgoing(busy)[0]->trigger_timer(), "t1");
  EXPECT_EQ(sm.variables()[0].second, 3);
}

TEST(UmlProfile, StereotypeApplicationAndTaggedValues) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& st = t.model.create_stereotype(profile, "Comp", ElementKind::Class);
  st.define_tag("Priority", TagType::Integer, "execution priority");
  st.define_tag("RealTimeType", TagType::Enum, "rt class",
                {"hard", "soft", "none"});

  auto& app = t.producer->apply(st, {{"Priority", "5"}});
  EXPECT_TRUE(t.producer->has_stereotype("Comp"));
  EXPECT_TRUE(t.producer->has_stereotype(st));
  EXPECT_FALSE(t.consumer->has_stereotype("Comp"));
  EXPECT_EQ(t.producer->tagged_value("Priority"), "5");
  EXPECT_EQ(t.producer->tagged_value("RealTimeType"), "");
  EXPECT_FALSE(t.producer->has_tagged_value("RealTimeType"));

  // Re-applying returns the same application.
  EXPECT_EQ(&t.producer->apply(st), &app);
  t.producer->apply(st, {{"RealTimeType", "soft"}});
  EXPECT_EQ(t.producer->tagged_value("RealTimeType"), "soft");
  EXPECT_EQ(t.producer->applications().size(), 1u);
}

TEST(UmlProfile, SpecializationInheritsTagsAndMetaclass) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& base = t.model.create_stereotype(profile, "Segment", ElementKind::Class);
  base.define_tag("DataWidth", TagType::Integer, "width");
  auto& hibi =
      t.model.create_stereotype(profile, "HIBISegment", ElementKind::Class, &base);
  hibi.define_tag("BurstLength", TagType::Integer, "burst");

  EXPECT_EQ(hibi.general(), &base);
  EXPECT_TRUE(hibi.is_kind_of(base));
  EXPECT_FALSE(base.is_kind_of(hibi));
  EXPECT_EQ(hibi.extended_metaclass(), ElementKind::Class);
  ASSERT_EQ(hibi.all_tags().size(), 2u);
  EXPECT_EQ(hibi.all_tags()[0]->name, "DataWidth");  // general-first order
  EXPECT_NE(hibi.tag("DataWidth"), nullptr);
  EXPECT_EQ(base.tag("BurstLength"), nullptr);

  // An element stereotyped <<HIBISegment>> also answers to <<Segment>>.
  t.producer->apply(hibi);
  EXPECT_TRUE(t.producer->has_stereotype("Segment"));
  EXPECT_TRUE(t.producer->has_stereotype(base));
  // stereotyped() includes specializations.
  EXPECT_EQ(t.model.stereotyped("Segment").size(), 1u);
}

TEST(UmlProfile, ProfileLookup) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& st = t.model.create_stereotype(profile, "A", ElementKind::Class);
  EXPECT_EQ(profile.stereotype("A"), &st);
  EXPECT_EQ(profile.stereotype("B"), nullptr);
  EXPECT_EQ(profile.stereotypes().size(), 1u);
}

struct TagCase {
  const char* label;
  TagType type;
  const char* value;
  bool ok;
};

class TagTypeChecking : public ::testing::TestWithParam<TagCase> {};

TEST_P(TagTypeChecking, Accepts) {
  TagDefinition def{"t", GetParam().type, "", {"red", "green"}, false};
  EXPECT_EQ(def.accepts(GetParam().value), GetParam().ok);
}

INSTANTIATE_TEST_SUITE_P(
    Values, TagTypeChecking,
    ::testing::Values(
        TagCase{"int_ok", TagType::Integer, "42", true},
        TagCase{"int_negative", TagType::Integer, "-7", true},
        TagCase{"int_plus", TagType::Integer, "+7", true},
        TagCase{"int_junk", TagType::Integer, "42x", false},
        TagCase{"int_empty", TagType::Integer, "", false},
        TagCase{"bool_true", TagType::Boolean, "true", true},
        TagCase{"bool_bad", TagType::Boolean, "yes", false},
        TagCase{"real_ok", TagType::Real, "3.25", true},
        TagCase{"real_exp", TagType::Real, "1e3", true},
        TagCase{"real_junk", TagType::Real, "3.2.1", false},
        TagCase{"enum_ok", TagType::Enum, "red", true},
        TagCase{"enum_bad", TagType::Enum, "blue", false},
        TagCase{"string_any", TagType::String, "anything", true}),
    [](const auto& info) { return std::string(info.param.label); });

// ---------------------------------------------------------------------------
// Core validator
// ---------------------------------------------------------------------------

TEST(UmlValidation, CleanModelPasses) {
  TinyModel t;
  const auto result = Validator::uml_core().run(t.model);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_EQ(result.error_count(), 0u);
}

TEST(UmlValidation, WrongMetaclassIsAnError) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& st = t.model.create_stereotype(profile, "OnDependency",
                                       ElementKind::Dependency);
  t.producer->apply(st);  // Class, not Dependency
  const auto result = Validator::uml_core().run(t.model);
  ASSERT_EQ(result.error_count(), 1u);
  EXPECT_EQ(result.diagnostics()[0].rule, "uml.stereotype.metaclass");
}

TEST(UmlValidation, UndeclaredAndIllTypedTags) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& st = t.model.create_stereotype(profile, "C", ElementKind::Class);
  st.define_tag("Priority", TagType::Integer, "");
  t.producer->apply(st, {{"Priority", "high"}, {"Bogus", "1"}});
  const auto result = Validator::uml_core().run(t.model);
  EXPECT_EQ(result.error_count(), 2u);
  bool undeclared = false, illtyped = false;
  for (const auto& d : result.diagnostics()) {
    undeclared |= d.rule == "uml.tag.undeclared";
    illtyped |= d.rule == "uml.tag.type";
  }
  EXPECT_TRUE(undeclared);
  EXPECT_TRUE(illtyped);
}

TEST(UmlValidation, MissingRequiredTag) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& st = t.model.create_stereotype(profile, "C", ElementKind::Class);
  st.define_tag("ID", TagType::Integer, "", {}, /*required=*/true);
  t.producer->apply(st);
  const auto result = Validator::uml_core().run(t.model);
  ASSERT_EQ(result.error_count(), 1u);
  EXPECT_EQ(result.diagnostics()[0].rule, "uml.tag.required");
}

TEST(UmlValidation, PortSignalMismatchIsAWarning) {
  TinyModel t;
  auto& extra = t.model.create_signal("Extra");
  // Producer now also requires Extra, which Consumer's port does not provide.
  t.producer->port("out")->require(extra);
  const auto result = Validator::uml_core().run(t.model);
  EXPECT_TRUE(result.ok());  // warnings do not fail validation
  ASSERT_EQ(result.warning_count(), 1u);
  EXPECT_EQ(result.diagnostics()[0].rule, "uml.port.signals");
}

TEST(UmlValidation, StateMachineNeedsExactlyOneInitialState) {
  TinyModel t;
  auto& sm = t.model.create_behavior(*t.producer);
  t.model.add_state(sm, "A");
  const auto r1 = Validator::uml_core().run(t.model);
  EXPECT_EQ(r1.error_count(), 1u);

  t.model.add_state(sm, "B", /*initial=*/true);
  EXPECT_TRUE(Validator::uml_core().run(t.model).ok());

  t.model.add_state(sm, "C", /*initial=*/true);
  const auto r2 = Validator::uml_core().run(t.model);
  EXPECT_EQ(r2.error_count(), 1u);
  EXPECT_EQ(r2.diagnostics()[0].rule, "uml.sm.wellformed");
}

TEST(UmlValidation, SendThroughUnknownPortIsAnError) {
  TinyModel t;
  auto& sm = t.model.create_behavior(*t.producer);
  auto& a = t.model.add_state(sm, "A", true);
  auto& b = t.model.add_state(sm, "B");
  t.model.add_transition(sm, a, b)
      .add_effect(Action::send("nosuchport", *t.data));
  const auto result = Validator::uml_core().run(t.model);
  ASSERT_GE(result.error_count(), 1u);
  EXPECT_EQ(result.diagnostics()[0].rule, "uml.sm.wellformed");
}

TEST(UmlValidation, DiagnosticFormatting) {
  Diagnostic d{Severity::Warning, "rule.id", "Elem.path", "message text"};
  EXPECT_EQ(d.to_string(), "warning [rule.id] Elem.path: message text");
}

TEST(UmlValidation, TriggerThroughUnknownPortIsAnError) {
  TinyModel t;
  auto& sm = t.model.create_behavior(*t.consumer);
  auto& a = t.model.add_state(sm, "A", true);
  t.model.add_transition(sm, a, a, *t.data, "nosuchport");
  const auto result = Validator::uml_core().run(t.model);
  ASSERT_GE(result.error_count(), 1u);
  EXPECT_EQ(result.diagnostics()[0].rule, "uml.sm.wellformed");
}

TEST(UmlValidation, EnumTagValidatedOnApplication) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& st = t.model.create_stereotype(profile, "Seg", ElementKind::Class);
  st.define_tag("Arbitration", TagType::Enum, "policy",
                {"priority", "round-robin"});
  t.producer->apply(st, {{"Arbitration", "lottery"}});
  const auto bad = Validator::uml_core().run(t.model);
  ASSERT_EQ(bad.error_count(), 1u);
  EXPECT_EQ(bad.diagnostics()[0].rule, "uml.tag.type");

  t.producer->apply(st, {{"Arbitration", "priority"}});
  EXPECT_TRUE(Validator::uml_core().run(t.model).ok());
}

TEST(UmlValidation, InheritedTagValidatesThroughSpecialization) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& base = t.model.create_stereotype(profile, "Seg", ElementKind::Class);
  base.define_tag("DataWidth", TagType::Integer, "width");
  auto& hibi =
      t.model.create_stereotype(profile, "HibiSeg", ElementKind::Class, &base);

  // The inherited tag is found (not uml.tag.undeclared) and type-checked.
  t.producer->apply(hibi, {{"DataWidth", "wide"}});
  const auto bad = Validator::uml_core().run(t.model);
  ASSERT_EQ(bad.error_count(), 1u);
  EXPECT_EQ(bad.diagnostics()[0].rule, "uml.tag.type");

  t.producer->apply(hibi, {{"DataWidth", "32"}});
  EXPECT_TRUE(Validator::uml_core().run(t.model).ok());
}

TEST(UmlValidation, BooleanTagValidatedOnApplication) {
  TinyModel t;
  auto& profile = t.model.create_profile("P");
  auto& st = t.model.create_stereotype(profile, "Grp", ElementKind::Class);
  st.define_tag("Fixed", TagType::Boolean, "pinned");
  t.producer->apply(st, {{"Fixed", "maybe"}});
  const auto bad = Validator::uml_core().run(t.model);
  ASSERT_EQ(bad.error_count(), 1u);
  EXPECT_EQ(bad.diagnostics()[0].rule, "uml.tag.type");

  t.producer->apply(st, {{"Fixed", "false"}});
  EXPECT_TRUE(Validator::uml_core().run(t.model).ok());
}
