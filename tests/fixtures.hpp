// Shared test fixture: a miniature but complete TUT-Profile system
// (application + platform + mapping) used across module tests. Shapewise it
// is a shrunk TUTMAC: three functional components, four processes, two
// groups, two processors and a hardware accelerator on a bridged bus.
#pragma once

#include <map>
#include <string>

#include "appmodel/appmodel.hpp"
#include "mapping/mapping.hpp"
#include "platform/platform.hpp"
#include "profile/tut_profile.hpp"
#include "uml/model.hpp"

namespace tut::test {

struct MiniSystem {
  uml::Model model{"mini"};
  profile::TutProfile prof;

  // Application.
  uml::Class* app = nullptr;
  uml::Class* ctrl_comp = nullptr;
  uml::Class* dsp_comp = nullptr;
  uml::Class* crc_comp = nullptr;
  uml::Property* ctrl = nullptr;
  uml::Property* dsp1 = nullptr;
  uml::Property* dsp2 = nullptr;
  uml::Property* crc = nullptr;
  uml::Property* group_ctrl = nullptr;
  uml::Property* group_dsp = nullptr;
  uml::Property* group_hw = nullptr;

  // Platform.
  uml::Class* plat = nullptr;
  uml::Class* cpu_type = nullptr;
  uml::Class* dsp_type = nullptr;
  uml::Class* acc_type = nullptr;
  uml::Property* cpu1 = nullptr;
  uml::Property* cpu2 = nullptr;
  uml::Property* acc = nullptr;
  uml::Property* seg1 = nullptr;
  uml::Property* seg2 = nullptr;
  uml::Property* bridge = nullptr;

  // Signals.
  uml::Signal* req = nullptr;
  uml::Signal* rsp = nullptr;

  MiniSystem() : prof(profile::install(model)) {
    req = &model.create_signal("Req");
    req->add_parameter("len", "int");
    rsp = &model.create_signal("Rsp");
    rsp->add_parameter("status", "int");

    appmodel::ApplicationBuilder ab(model, prof);
    app = &ab.application("MiniApp", {{"RealTimeType", "soft"}});
    ctrl_comp = &ab.component("Controller", {{"CodeMemory", "2048"},
                                             {"RealTimeType", "soft"}});
    dsp_comp = &ab.component("DspFilter", {{"CodeMemory", "8192"}});
    crc_comp = &ab.component("CrcCalc", {{"CodeMemory", "512"}});

    wire_components();

    ctrl = &ab.process("ctrl", *ctrl_comp,
                       {{"Priority", "2"}, {"ProcessType", "general"}});
    dsp1 = &ab.process("dsp1", *dsp_comp,
                       {{"Priority", "1"}, {"ProcessType", "dsp"}});
    dsp2 = &ab.process("dsp2", *dsp_comp,
                       {{"Priority", "1"}, {"ProcessType", "dsp"}});
    crc = &ab.process("crc", *crc_comp, {{"ProcessType", "hardware"}});

    // Composite structure wiring (Figure 5 shape): ctrl -> dsp1 -> crc, and
    // a boundary port for environment traffic into dsp2.
    model.connect(*app, "ctrl", "out", "dsp1", "in");
    model.connect(*app, "dsp1", "hw", "crc", "in");
    model.add_port(*app, "pin").provide(*req);
    model.connect_boundary(*app, "pin", "dsp2", "in");

    group_ctrl = &ab.group("g_ctrl", {{"ProcessType", "general"}});
    group_dsp = &ab.group("g_dsp", {{"ProcessType", "dsp"}});
    group_hw = &ab.group("g_hw", {{"ProcessType", "hardware"}});
    ab.assign(*ctrl, *group_ctrl, /*fixed=*/true);
    ab.assign(*dsp1, *group_dsp);
    ab.assign(*dsp2, *group_dsp);
    ab.assign(*crc, *group_hw);

    platform::PlatformBuilder pb(model, prof);
    plat = &pb.platform("MiniPlatform");
    cpu_type = &pb.component_type(
        "NiosCpu", {{"Type", "general"}, {"Frequency", "50"}, {"Area", "1200.5"}});
    dsp_type = &pb.component_type(
        "DspCore", {{"Type", "dsp"}, {"Frequency", "80"}, {"Area", "2100.0"}});
    acc_type = &pb.component_type(
        "CrcAccel",
        {{"Type", "hw_accelerator"}, {"Frequency", "100"}, {"Area", "300.0"}});
    cpu1 = &pb.instance("cpu1", *cpu_type, {{"Priority", "1"}});
    cpu2 = &pb.instance("cpu2", *dsp_type);
    acc = &pb.instance("acc", *acc_type);
    seg1 = &pb.segment("seg1", {{"DataWidth", "32"},
                                {"Frequency", "100"},
                                {"Arbitration", "priority"}});
    seg2 = &pb.segment("seg2", {{"DataWidth", "32"},
                                {"Frequency", "100"},
                                {"Arbitration", "round-robin"}});
    bridge = &pb.segment("bridge", {{"DataWidth", "16"}, {"Frequency", "50"}});
    pb.wrapper(*cpu1, *seg1, {{"BufferSize", "64"}, {"MaxTime", "16"}});
    pb.wrapper(*cpu2, *seg1);
    pb.wrapper(*acc, *seg2);
    pb.bridge_link(*seg1, *bridge);
    pb.bridge_link(*bridge, *seg2);

    mapping::MappingBuilder mb(model, prof);
    mb.map(*group_ctrl, *cpu1, /*fixed=*/true);
    mb.map(*group_dsp, *cpu2);
    mb.map(*group_hw, *acc);
  }

private:
  /// Gives each functional component ports and a two-state EFSM:
  /// Controller sends Req bursts, Dsp consumes Req / emits Rsp, Crc consumes
  /// Req from dsp-side and answers Rsp.
  void wire_components() {
    model.add_port(*ctrl_comp, "out").require(*req).provide(*rsp);
    model.add_port(*dsp_comp, "in").provide(*req).require(*rsp);
    model.add_port(*dsp_comp, "hw").require(*req).provide(*rsp);
    model.add_port(*crc_comp, "in").provide(*req).require(*rsp);

    // Controller: fires a request every 100 time units.
    auto& csm = *ctrl_comp->behavior();
    auto& c_idle = model.add_state(csm, "Idle", true);
    c_idle.on_entry(uml::Action::set_timer("tick", "100"));
    auto& c_tx = model.add_state(csm, "Tx");
    c_tx.on_entry(uml::Action::set_timer("tick", "100"));
    model.add_timer_transition(csm, c_idle, c_tx, "tick")
        .add_effect(uml::Action::compute("50"))
        .add_effect(uml::Action::send("out", *req, {"8"}));
    model.add_timer_transition(csm, c_tx, c_tx, "tick")
        .add_effect(uml::Action::compute("50"))
        .add_effect(uml::Action::send("out", *req, {"8"}));
    model.add_transition(csm, c_tx, c_idle, *rsp, "out");

    // Dsp: heavy compute per request, forwards every 2nd request to hw.
    auto& dsm = *dsp_comp->behavior();
    dsm.declare_variable("n", 0);
    auto& d_idle = model.add_state(dsm, "Idle", true);
    model.add_transition(dsm, d_idle, d_idle, *req, "in")
        .add_effect(uml::Action::compute("400 * len"))
        .add_effect(uml::Action::assign("n", "n + 1"))
        .add_effect(uml::Action::send("hw", *req, {"len"}));
    model.add_transition(dsm, d_idle, d_idle, *rsp, "hw")
        .add_effect(uml::Action::compute("20"))
        .add_effect(uml::Action::send("in", *rsp, {"0"}));

    // Crc: short fixed-cost handling.
    auto& hsm = *crc_comp->behavior();
    auto& h_idle = model.add_state(hsm, "Idle", true);
    model.add_transition(hsm, h_idle, h_idle, *req, "in")
        .add_effect(uml::Action::compute("8 * len"))
        .add_effect(uml::Action::send("in", *rsp, {"1"}));
  }
};

}  // namespace tut::test
