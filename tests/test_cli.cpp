// Integration tests for the `tut` command-line tool: the full external
// workflow (simulate -> validate -> info -> diagram -> codegen -> profile)
// driven exactly as a user would drive it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

namespace {

#ifndef TUT_CLI_PATH
#define TUT_CLI_PATH "tut"
#endif

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  // The capture file carries the pid for the same reason kWork does below:
  // concurrently running test processes must not share temp paths.
  static int counter = 0;
  const fs::path out =
      fs::temp_directory_path() / ("tut_cli_out_" + std::to_string(getpid()) +
                                   "_" + std::to_string(counter++));
  const std::string cmd =
      std::string(TUT_CLI_PATH) + " " + args + " > " + out.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::ifstream in(out);
  CliResult result;
  result.output.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  result.exit_code = WEXITSTATUS(rc);
  fs::remove(out);
  return result;
}

// Per-process work dir: ctest runs each test in its own process, and a
// shared path would let one test's SetUpTestSuite wipe the artifacts
// another test is still reading when the suite runs in parallel.
const fs::path kWork = fs::temp_directory_path() /
                       ("tut_cli_work_" + std::to_string(getpid()));

class CliFlow : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    fs::remove_all(kWork);
    const CliResult r = run_cli("simulate tutmac " + kWork.string() + " 5");
    ASSERT_EQ(r.exit_code, 0) << r.output;
  }
  static void TearDownTestSuite() { fs::remove_all(kWork); }
  static std::string model() { return (kWork / "model.xml").string(); }
  static std::string simlog() { return (kWork / "sim.log").string(); }
};

}  // namespace

TEST_F(CliFlow, SimulateWroteArtifacts) {
  EXPECT_TRUE(fs::exists(model()));
  EXPECT_TRUE(fs::exists(simlog()));
  EXPECT_GT(fs::file_size(simlog()), 100u);
}

TEST_F(CliFlow, ValidatePassesOnTutmac) {
  const CliResult r = run_cli("validate " + model());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 errors"), std::string::npos);
}

TEST_F(CliFlow, InfoSummarizesTheSystem) {
  const CliResult r = run_cli("info " + model());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("Tutmac_Protocol"), std::string::npos);
  EXPECT_NE(r.output.find("group1 -> processor1"), std::string::npos);
  EXPECT_NE(r.output.find("4 component instances"), std::string::npos);
}

TEST_F(CliFlow, DiagramsRender) {
  for (const char* fig : {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8"}) {
    const CliResult r = run_cli(std::string("diagram ") + model() + " " + fig);
    EXPECT_EQ(r.exit_code, 0) << fig;
    EXPECT_FALSE(r.output.empty()) << fig;
  }
  EXPECT_NE(run_cli("diagram " + model() + " fig99").exit_code, 0);
}

TEST_F(CliFlow, ProfilePrintsTable4AndLatencies) {
  const CliResult r = run_cli("profile " + model() + " " + simlog());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("(a) Process group execution"), std::string::npos);
  EXPECT_NE(r.output.find("group1"), std::string::npos);
  EXPECT_NE(r.output.find("End-to-end signal latencies"), std::string::npos);
}

TEST_F(CliFlow, CodegenWritesSources) {
  const fs::path dir = kWork / "gen";
  const CliResult r = run_cli("codegen " + model() + " " + dir.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(fs::exists(dir / "radio_channel_access.c"));
  EXPECT_FALSE(fs::exists(dir / "tut_runtime_host.c"));

  const fs::path host_dir = kWork / "gen_host";
  const CliResult rh =
      run_cli("codegen " + model() + " " + host_dir.string() + " --host");
  EXPECT_EQ(rh.exit_code, 0) << rh.output;
  EXPECT_TRUE(fs::exists(host_dir / "tut_runtime_host.c"));
  EXPECT_TRUE(fs::exists(host_dir / "platform_glue.c"));
}

TEST_F(CliFlow, RoundTripIsStable) {
  const CliResult once = run_cli("roundtrip " + model());
  ASSERT_EQ(once.exit_code, 0);
  // Write and round-trip again: fixed point.
  const fs::path copy = kWork / "copy.xml";
  std::ofstream(copy) << once.output;
  const CliResult twice = run_cli("roundtrip " + copy.string());
  EXPECT_EQ(once.output, twice.output);
}

TEST_F(CliFlow, LintPassesOnTutmacEvenUnderWerror) {
  const CliResult r = run_cli("lint " + model());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 errors, 0 warnings"), std::string::npos);
  // The single-accelerator failover note is informational and never blocks.
  EXPECT_NE(r.output.find("map.failover.infeasible"), std::string::npos);
  EXPECT_EQ(run_cli("lint " + model() + " --Werror").exit_code, 0);
}

TEST_F(CliFlow, LintJsonSharesTheDiagnosticRenderer) {
  const CliResult r = run_cli("lint " + model() + " --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(r.output.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(r.output.find("\"infos\":1"), std::string::npos);

  const CliResult v = run_cli("validate " + model() + " --json");
  EXPECT_EQ(v.exit_code, 0) << v.output;
  EXPECT_NE(v.output.find("\"errors\":0"), std::string::npos);
}

TEST_F(CliFlow, LintFlagsASeveredConnectorUnderWerror) {
  // Sever the first connector in the document: whichever it is, some signal
  // path dies and the linter must say so (warning at minimum).
  std::ifstream in(model());
  std::string xml((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  const auto at = xml.find("<connector");
  ASSERT_NE(at, std::string::npos);
  const auto close = xml.find("</connector>", at);
  ASSERT_NE(close, std::string::npos);
  const auto end = xml.find('\n', close);
  const auto line_start = xml.rfind('\n', at);
  xml.erase(line_start, end - line_start);
  const fs::path broken = kWork / "severed.xml";
  std::ofstream(broken) << xml;

  const CliResult r = run_cli("lint " + broken.string() + " --Werror");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("flow."), std::string::npos) << r.output;
}

TEST_F(CliFlow, LintBaselineRoundTripSuppresses) {
  const fs::path bl = kWork / "lint.baseline";
  ASSERT_EQ(run_cli("lint " + model() + " --write-baseline " + bl.string())
                .exit_code,
            0);
  const CliResult r = run_cli("lint " + model() + " --baseline " + bl.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("baseline-suppressed"), std::string::npos);
}

TEST_F(CliFlow, LintStaleBaselineEntriesWarn) {
  const fs::path bl = kWork / "stale.baseline";
  std::ofstream(bl) << "efsm.guard.false\tSome.Gone.Element\n"
                       "map.failover.infeasible\tTUTWLAN_Platform."
                       "accelerator1\n";
  const CliResult r = run_cli("lint " + model() + " --baseline " + bl.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The second entry still matches; only the first is reported stale, with
  // the rotten rule id in the message.
  EXPECT_NE(r.output.find("analysis.baseline.stale"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'efsm.guard.false'"), std::string::npos);
  EXPECT_EQ(r.output.find("'map.failover.infeasible'"), std::string::npos);
  // A freshly written baseline has no stale entries to warn about.
  const fs::path fresh = kWork / "fresh.baseline";
  ASSERT_EQ(
      run_cli("lint " + model() + " --write-baseline " + fresh.string())
          .exit_code,
      0);
  const CliResult rf =
      run_cli("lint " + model() + " --baseline " + fresh.string());
  EXPECT_EQ(rf.output.find("analysis.baseline.stale"), std::string::npos)
      << rf.output;
}

TEST_F(CliFlow, LintRulesFilterAcceptsGlobsAndRejectsUnknownIds) {
  // Glob filter: only efsm.* findings survive (TUTMAC has none, so the
  // failover info disappears from the report).
  const CliResult glob = run_cli("lint " + model() + " --rules efsm.*");
  EXPECT_EQ(glob.exit_code, 0) << glob.output;
  EXPECT_EQ(glob.output.find("map.failover.infeasible"), std::string::npos);
  // Exact id keeps exactly that rule's findings.
  const CliResult exact =
      run_cli("lint " + model() + " --rules map.failover.infeasible");
  EXPECT_EQ(exact.exit_code, 0) << exact.output;
  EXPECT_NE(exact.output.find("map.failover.infeasible"), std::string::npos);
  // Unknown ids and globs matching nothing fail loudly with the tag.
  const CliResult bad = run_cli("lint " + model() + " --rules efsm.bogus");
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.output.find("[lint.rules.unknown]"), std::string::npos)
      << bad.output;
  const CliResult none = run_cli("lint " + model() + " --rules zzz.*");
  EXPECT_EQ(none.exit_code, 1);
  EXPECT_NE(none.output.find("[lint.rules.unknown]"), std::string::npos);
}

TEST_F(CliFlow, LintAbsintTogglesTheRangePass) {
  // Both spellings are accepted; with the pass off, the range rules are
  // still listed in the catalog but can never fire.
  EXPECT_EQ(run_cli("lint " + model() + " --absint --Werror").exit_code, 0);
  EXPECT_EQ(run_cli("lint " + model() + " --no-absint --Werror").exit_code, 0);
}

TEST_F(CliFlow, EfsmDumpPrintsValueRanges) {
  const CliResult r = run_cli("efsm dump " + model());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("value ranges:"), std::string::npos) << r.output;
}

TEST(CliCampaign, DryRunPrintsPlanWithoutRunning) {
  const fs::path xml =
      fs::temp_directory_path() /
      ("tut_cli_campaign_" + std::to_string(getpid()) + ".xml");
  std::ofstream(xml) << "<tut:campaign name=\"dry\" seed=\"7\" "
                        "horizon=\"2000000\">\n"
                        "  <axis name=\"seed\" count=\"4\"/>\n"
                        "  <axis name=\"slotPeriod\" values=\"50000 "
                        "100000\"/>\n"
                        "</tut:campaign>\n";
  const CliResult r =
      run_cli("campaign tutmac " + xml.string() + " --dry-run");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("campaign 'dry' (dry run)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("scenarios:   8"), std::string::npos);
  EXPECT_NE(r.output.find("axis:        slotPeriod (2 values)"),
            std::string::npos);
  EXPECT_NE(r.output.find("fingerprint: "), std::string::npos);
  EXPECT_NE(r.output.find("part file:   "), std::string::npos);
  // Dry means dry: no aggregate block, no samples, no simulation output.
  EXPECT_EQ(r.output.find("aggregate"), std::string::npos);
  fs::remove(xml);
}

TEST(CliErrors, UsageAndMissingFiles) {
  EXPECT_EQ(run_cli("lint /nonexistent/model.xml").exit_code, 1);
  const CliResult rules = run_cli("lint --rules");
  EXPECT_EQ(rules.exit_code, 0);
  EXPECT_NE(rules.output.find("efsm.state.unreachable"), std::string::npos);
  EXPECT_NE(rules.output.find("map.group.unmapped"), std::string::npos);
  EXPECT_EQ(run_cli("").exit_code, 2);
  EXPECT_EQ(run_cli("frobnicate x").exit_code, 2);
  EXPECT_EQ(run_cli("validate /nonexistent/model.xml").exit_code, 1);
  EXPECT_EQ(run_cli("profile /nonexistent/a.xml /nonexistent/b.log").exit_code,
            1);
}
