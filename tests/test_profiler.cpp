// Tests for the profiling tool: process-group extraction (stage 1), report
// analysis (stage 3) on both synthetic logs and real co-simulation logs.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "profiler/profiler.hpp"
#include "sim/simulator.hpp"
#include "uml/serialize.hpp"

using namespace tut;
using namespace tut::profiler;

TEST(ProcessGroupInfo, FromModel) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  ASSERT_EQ(info.groups.size(), 3u);
  EXPECT_EQ(info.groups[0], "g_ctrl");
  EXPECT_EQ(info.group_of.at("ctrl"), "g_ctrl");
  EXPECT_EQ(info.group_of.at("dsp1"), "g_dsp");
  EXPECT_EQ(info.group_of.at("dsp2"), "g_dsp");
  EXPECT_EQ(info.group_of.at("crc"), "g_hw");
  EXPECT_EQ(info.party_of("ctrl"), "g_ctrl");
  EXPECT_EQ(info.party_of("env"), kEnvironmentParty);
  EXPECT_EQ(info.party_of("unknown_process"), kEnvironmentParty);
}

TEST(ProcessGroupInfo, FromXmlMatchesFromModel) {
  test::MiniSystem sys;
  const auto direct = ProcessGroupInfo::from_model(sys.model);
  const auto via_xml =
      ProcessGroupInfo::from_xml(uml::to_xml_string(sys.model));
  EXPECT_EQ(direct.groups, via_xml.groups);
  EXPECT_EQ(direct.group_of, via_xml.group_of);
}

namespace {

/// A handcrafted log with known aggregates.
sim::SimulationLog synthetic_log() {
  sim::SimulationLog log;
  log.run(0, "ctrl", 100, 2000);
  log.run(10, "dsp1", 900, 11250);
  log.run(20, "dsp2", 500, 6250);
  log.send(30, "ctrl", "dsp1", "Req", 8);
  log.receive(70, "dsp1", "ctrl", "Req");
  log.send(80, "dsp1", "crc", "Req", 8);
  log.send(90, "dsp1", "ctrl", "Rsp", 8);
  log.send(95, "env", "dsp2", "Req", 8);
  log.send(97, "dsp2", "env", "Rsp", 8);
  log.drop(99, "dsp2", "Rsp");
  log.run(100, "crc", 64, 640);
  return log;
}

}  // namespace

TEST(Analyze, GroupExecutionRows) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  const auto report = analyze(info, synthetic_log());

  // Groups in model order, then Environment.
  ASSERT_EQ(report.execution.size(), 4u);
  EXPECT_EQ(report.execution[0].group, "g_ctrl");
  EXPECT_EQ(report.execution[0].cycles, 100);
  EXPECT_EQ(report.execution[1].group, "g_dsp");
  EXPECT_EQ(report.execution[1].cycles, 1400);  // dsp1 + dsp2
  EXPECT_EQ(report.execution[2].group, "g_hw");
  EXPECT_EQ(report.execution[2].cycles, 64);
  EXPECT_EQ(report.execution[3].group, kEnvironmentParty);
  EXPECT_EQ(report.execution[3].cycles, 0);
  EXPECT_EQ(report.total_cycles(), 1564);

  // Proportions sum to ~100%.
  double sum = 0;
  for (const auto& row : report.execution) sum += row.proportion;
  EXPECT_NEAR(sum, 100.0, 1e-9);
  EXPECT_NEAR(report.execution[1].proportion, 100.0 * 1400 / 1564, 1e-9);
}

TEST(Analyze, SignalMatrix) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  const auto report = analyze(info, synthetic_log());

  ASSERT_EQ(report.parties.size(), 4u);  // 3 groups + Environment
  const auto g_ctrl = report.party_index("g_ctrl");
  const auto g_dsp = report.party_index("g_dsp");
  const auto g_hw = report.party_index("g_hw");
  const auto env = report.party_index(kEnvironmentParty);
  EXPECT_EQ(report.signals[g_ctrl][g_dsp], 1u);
  EXPECT_EQ(report.signals[g_dsp][g_hw], 1u);
  EXPECT_EQ(report.signals[g_dsp][g_ctrl], 1u);
  EXPECT_EQ(report.signals[env][g_dsp], 1u);
  EXPECT_EQ(report.signals[g_dsp][env], 1u);
  EXPECT_EQ(report.signals[g_hw][g_hw], 0u);
  EXPECT_EQ(report.total_signals(), 5u);
  EXPECT_EQ(report.inter_group_signals(), 5u);  // none are intra-group here
  EXPECT_EQ(report.party_index("nope"), static_cast<std::size_t>(-1));
}

TEST(Analyze, PerProcessDetails) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  const auto report = analyze(info, synthetic_log());
  EXPECT_EQ(report.process_cycles.at("dsp1"), 900);
  EXPECT_EQ(report.process_cycles.at("crc"), 64);
  EXPECT_EQ((report.process_signals.at({"ctrl", "dsp1"})), 1u);
  EXPECT_EQ(report.drops.at("dsp2"), 1u);
}

TEST(Analyze, ReceivesDoNotDoubleCount) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  sim::SimulationLog log;
  log.send(0, "ctrl", "dsp1", "Req", 8);
  log.receive(40, "dsp1", "ctrl", "Req");
  const auto report = analyze(info, log);
  EXPECT_EQ(report.total_signals(), 1u);
}

TEST(Analyze, EmptyLogYieldsZeroReport) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  const auto report = analyze(info, sim::SimulationLog{});
  EXPECT_EQ(report.total_cycles(), 0);
  EXPECT_EQ(report.total_signals(), 0u);
  for (const auto& row : report.execution) EXPECT_EQ(row.proportion, 0.0);
}

TEST(Analyze, ReportTextLooksLikeTable4) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  const std::string text = analyze(info, synthetic_log()).to_text();
  EXPECT_NE(text.find("(a) Process group execution"), std::string::npos);
  EXPECT_NE(text.find("(b) Number of signals between groups"),
            std::string::npos);
  EXPECT_NE(text.find("Proportion"), std::string::npos);
  EXPECT_NE(text.find("Sender/Receiver"), std::string::npos);
  EXPECT_NE(text.find("Environment"), std::string::npos);
  EXPECT_NE(text.find("cycles"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: co-simulate the MiniSystem, profile through the log-file text
// (the full Figure 2 loop: model XML -> group info; simulation -> log-file;
// combine -> report).
// ---------------------------------------------------------------------------

TEST(EndToEnd, Figure2FlowOnMiniSystem) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  sim::Simulation sim(view, {.horizon = 500'000});
  sim.inject_periodic(1000, 50'000, 8, "pin", *sys.req, {4});
  sim.run();

  // Stage 1: parse the model XML.
  const auto info = ProcessGroupInfo::from_xml(uml::to_xml_string(sys.model));
  // Stage 2 produced the log; round-trip it through the file format.
  const auto log = sim::SimulationLog::parse(sim.log().to_text());
  // Stage 3: combine and analyze.
  const auto report = analyze(info, log);

  // All three processor-ish groups did work; proportions are sane.
  EXPECT_GT(report.execution[0].cycles, 0);  // g_ctrl
  EXPECT_GT(report.execution[1].cycles, 0);  // g_dsp
  EXPECT_GT(report.execution[2].cycles, 0);  // g_hw
  EXPECT_EQ(report.execution[3].cycles, 0);  // Environment does no work
  // The dsp group dominates in the MiniSystem.
  EXPECT_GT(report.execution[1].proportion, 50.0);
  // Environment sent the injected signals.
  const auto env = report.party_index(kEnvironmentParty);
  const auto g_dsp = report.party_index("g_dsp");
  EXPECT_GE(report.signals[env][g_dsp], 8u);
  // ctrl -> dsp traffic appears as g_ctrl -> g_dsp.
  const auto g_ctrl = report.party_index("g_ctrl");
  EXPECT_GT(report.signals[g_ctrl][g_dsp], 0u);
}

// ---------------------------------------------------------------------------
// Latency analysis
// ---------------------------------------------------------------------------

TEST(Latency, MatchesSendsToReceivesFifo) {
  sim::SimulationLog log;
  log.send(100, "a", "b", "Sig", 8);
  log.send(200, "a", "b", "Sig", 8);
  log.receive(150, "b", "a", "Sig");   // first send: 50
  log.receive(500, "b", "a", "Sig");   // second send: 300
  const auto report = latency_report(log);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].from, "a");
  EXPECT_EQ(report[0].to, "b");
  EXPECT_EQ(report[0].signal, "Sig");
  EXPECT_EQ(report[0].samples, 2u);
  EXPECT_EQ(report[0].min, 50u);
  EXPECT_EQ(report[0].max, 300u);
  EXPECT_DOUBLE_EQ(report[0].mean, 175.0);
}

TEST(Latency, SeparatesStreamsBySignalAndPeers) {
  sim::SimulationLog log;
  log.send(0, "a", "b", "X", 8);
  log.receive(10, "b", "a", "X");
  log.send(0, "a", "b", "Y", 8);
  log.receive(30, "b", "a", "Y");
  log.send(0, "c", "b", "X", 8);
  log.receive(70, "b", "c", "X");
  const auto report = latency_report(log);
  ASSERT_EQ(report.size(), 3u);
  // Ordered by (from, to, signal).
  EXPECT_EQ(report[0].signal, "X");
  EXPECT_EQ(report[0].max, 10u);
  EXPECT_EQ(report[1].signal, "Y");
  EXPECT_EQ(report[2].from, "c");
  EXPECT_EQ(report[2].max, 70u);
}

TEST(Latency, UnmatchedRecordsAreIgnored) {
  sim::SimulationLog log;
  log.send(0, "a", "b", "X", 8);          // never received (in flight)
  log.receive(10, "b", "z", "X");         // receive without send
  EXPECT_TRUE(latency_report(log).empty());
}

TEST(Latency, TextTableRenders) {
  sim::SimulationLog log;
  log.send(100, "ctrl", "dsp1", "Req", 8);
  log.receive(140, "dsp1", "ctrl", "Req");
  const std::string text = latency_to_text(latency_report(log));
  EXPECT_NE(text.find("from"), std::string::npos);
  EXPECT_NE(text.find("ctrl"), std::string::npos);
  EXPECT_NE(text.find("40"), std::string::npos);
}

TEST(Latency, MiniSystemBusLatencyVisible) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  sim::Simulation sim(view, {.horizon = 300'000});
  sim.run();
  const auto report = latency_report(sim.log());
  // ctrl -> dsp1 crosses the bus: latency 40 ticks (see test_sim).
  bool found = false;
  for (const auto& s : report) {
    if (s.from == "ctrl" && s.to == "dsp1" && s.signal == "Req") {
      found = true;
      EXPECT_EQ(s.min, 40u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Analyze, BusyTimeAggregatesPerGroup) {
  test::MiniSystem sys;
  const auto info = ProcessGroupInfo::from_model(sys.model);
  const auto report = analyze(info, synthetic_log());
  EXPECT_EQ(report.execution[0].busy_time, 2000u);            // ctrl
  EXPECT_EQ(report.execution[1].busy_time, 11250u + 6250u);   // dsp1+dsp2
  EXPECT_EQ(report.execution[2].busy_time, 640u);             // crc
  EXPECT_EQ(report.execution[3].busy_time, 0u);               // Environment
}
