// Fault-plan fuzzing: generate a random (but seeded, hence reproducible)
// fault plan for the TUTMAC case study, run a short co-simulation under it,
// and check the run terminates, its log parses, and a second identical run
// is byte-identical. CI runs this under ASan/UBSan for a matrix of seeds
// (TUT_FUZZ_SEED); locally a single default seed keeps the test fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::sim;

namespace {

std::uint64_t fuzz_seed() {
  const char* env = std::getenv("TUT_FUZZ_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// A random plan over the real TUTMAC platform names. Windows are bounded
/// by the horizon so every generated scenario is meaningful.
FaultPlan random_plan(std::mt19937_64& rng, Time horizon) {
  const std::vector<std::string> pes = {"processor1", "processor2",
                                        "processor3", "accelerator1"};
  const std::vector<std::string> segs = {"hibisegment1", "hibisegment2",
                                         "bridge"};
  auto window = [&](const std::string& name) {
    FaultWindow w;
    w.component = name;
    w.start = rng() % horizon;
    // 1 in 4 permanent, else a bounded outage.
    if (rng() % 4 != 0) w.end = w.start + 1 + rng() % (horizon - w.start);
    return w;
  };

  FaultPlan plan;
  plan.seed = rng();
  const std::size_t n_pe = rng() % 3;       // 0..2 PE faults
  for (std::size_t i = 0; i < n_pe; ++i) {
    plan.pe_faults.push_back(window(pes[rng() % pes.size()]));
  }
  const std::size_t n_seg = rng() % 3;      // 0..2 segment faults
  for (std::size_t i = 0; i < n_seg; ++i) {
    plan.segment_faults.push_back(window(segs[rng() % segs.size()]));
  }
  const std::size_t n_ber = rng() % 3;      // 0..2 bit-error specs
  for (std::size_t i = 0; i < n_ber; ++i) {
    plan.bit_errors.push_back(
        {segs[rng() % segs.size()],
         static_cast<std::uint32_t>(rng() % 1'000'001)});
  }
  if (rng() % 2 == 0) plan.watchdog_timeout = 100'000 + rng() % horizon;
  plan.max_retries = static_cast<int>(rng() % 6);
  plan.retry_backoff = 50 + rng() % 1'000;
  return plan;
}

std::string run_once(const tutmac::System& sys, const FaultPlan& plan,
                     Time horizon) {
  mapping::SystemView view(*sys.model);
  Config config;
  config.horizon = horizon;
  config.faults = plan;
  Simulation simulation(view, config);
  sys.inject_workload(simulation);
  simulation.run();
  return simulation.log().to_text();
}

}  // namespace

TEST(FaultFuzz, RandomPlansRunToCompletionDeterministically) {
  constexpr Time kHorizon = 5'000'000;  // 5 ms keeps sanitizer runs quick
  std::mt19937_64 rng(fuzz_seed());

  tutmac::Options opt;
  opt.horizon = kHorizon;
  const tutmac::System sys = tutmac::build(opt);

  for (int round = 0; round < 4; ++round) {
    const FaultPlan plan = random_plan(rng, kHorizon);
    SCOPED_TRACE("seed " + std::to_string(fuzz_seed()) + " round " +
                 std::to_string(round) + "\n" + plan.to_xml_text());

    // The generated plan survives its own XML interchange.
    const FaultPlan parsed = FaultPlan::from_xml_text(plan.to_xml_text());
    EXPECT_EQ(parsed.to_xml_text(), plan.to_xml_text());

    const std::string first = run_once(sys, plan, kHorizon);
    EXPECT_FALSE(first.empty());
    EXPECT_NO_THROW({
      const SimulationLog reparsed = SimulationLog::parse(first);
      EXPECT_EQ(reparsed.to_text(), first);
    });

    // Bit-reproducible: a fresh simulation over the same plan produces the
    // same bytes.
    EXPECT_EQ(run_once(sys, plan, kHorizon), first);
  }
}
