// Tests for the C code generator, including a gcc syntax check of the
// generated sources when a C compiler is available.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "codegen/codegen.hpp"
#include "fixtures.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::codegen;

TEST(CIdent, ConvertsCamelCaseAndSpecials) {
  EXPECT_EQ(c_ident("RadioChannelAccess"), "radio_channel_access");
  EXPECT_EQ(c_ident("CRC"), "crc");
  EXPECT_EQ(c_ident("msduRec"), "msdu_rec");
  EXPECT_EQ(c_ident("Tutmac_Protocol"), "tutmac_protocol");
  EXPECT_EQ(c_ident("a-b c"), "a_b_c");
  EXPECT_EQ(c_ident("9lives"), "x9lives");
  EXPECT_EQ(c_ident(""), "x");
}

TEST(ExprToC, RenamesOnlyIdentifiers) {
  const std::map<std::string, std::string> rn = {{"n", "ctx->n"},
                                                 {"len", "p_len"}};
  EXPECT_EQ(expr_to_c("n + len * 2", rn), "ctx->n + p_len * 2");
  EXPECT_EQ(expr_to_c("n0 + n", rn), "n0 + ctx->n");  // token-aware, no prefix hit
  EXPECT_EQ(expr_to_c("(n>0)&&!len", rn), "(ctx->n>0)&&!p_len");
  EXPECT_EQ(expr_to_c("42", rn), "42");
  EXPECT_EQ(expr_to_c("unknown + 1", rn), "unknown + 1");
}

namespace {

struct Generated : ::testing::Test {
  test::MiniSystem sys;
  CodeBundle bundle = generate(sys.model);
};

bool balanced_braces(const std::string& text) {
  int depth = 0;
  for (char c : text) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

}  // namespace

TEST_F(Generated, EmitsExpectedFiles) {
  EXPECT_NE(bundle.find("tut_runtime.h"), nullptr);
  EXPECT_NE(bundle.find("signals.h"), nullptr);
  EXPECT_NE(bundle.find("controller.h"), nullptr);
  EXPECT_NE(bundle.find("controller.c"), nullptr);
  EXPECT_NE(bundle.find("dsp_filter.c"), nullptr);
  EXPECT_NE(bundle.find("crc_calc.c"), nullptr);
  EXPECT_NE(bundle.find("process_table.c"), nullptr);
  EXPECT_NE(bundle.find("main.c"), nullptr);
  EXPECT_EQ(bundle.find("nonexistent.c"), nullptr);
  EXPECT_GT(bundle.total_lines(), 100u);
  EXPECT_GT(bundle.total_bytes(), 1000u);
}

TEST_F(Generated, SignalsHeaderHasIdsAndLayouts) {
  const std::string& text = bundle.find("signals.h")->content;
  EXPECT_NE(text.find("#define TUT_SIG_REQ 1"), std::string::npos);
  EXPECT_NE(text.find("#define TUT_SIG_RSP 2"), std::string::npos);
  EXPECT_NE(text.find("args[0]=len"), std::string::npos);
}

TEST_F(Generated, ComponentHeaderHasStateEnumVarsAndPorts) {
  const std::string& text = bundle.find("dsp_filter.h")->content;
  EXPECT_NE(text.find("DSP_FILTER_STATE_Idle"), std::string::npos);
  EXPECT_NE(text.find("long n;"), std::string::npos);
  EXPECT_NE(text.find("tut_port_t* port_in;"), std::string::npos);
  EXPECT_NE(text.find("tut_port_t* port_hw;"), std::string::npos);
  EXPECT_NE(text.find("dsp_filter_dispatch"), std::string::npos);
}

TEST_F(Generated, DispatchTranslatesGuardsAndActions) {
  const std::string& text = bundle.find("dsp_filter.c")->content;
  // Compute expression with the signal parameter renamed.
  EXPECT_NE(text.find("tut_compute(400 * p_len);"), std::string::npos);
  // Variable assignment renamed to the context field.
  EXPECT_NE(text.find("ctx->n = ctx->n + 1;"), std::string::npos);
  // Send through the right port with the signal id.
  EXPECT_NE(text.find("tut_send(ctx->port_hw, TUT_SIG_REQ"), std::string::npos);
  // Port-qualified trigger match.
  EXPECT_NE(text.find("ev->port == ctx->port_in"), std::string::npos);
}

TEST_F(Generated, TimersAppearInControllerCode) {
  const std::string& text = bundle.find("controller.c")->content;
  EXPECT_NE(text.find("tut_set_timer(ctx, \"tick\", 100);"), std::string::npos);
  EXPECT_NE(text.find("tut_timer_is(ev, \"tick\")"), std::string::npos);
}

TEST_F(Generated, InstrumentationIsToggleable) {
  const std::string& with = bundle.find("dsp_filter.c")->content;
  EXPECT_NE(with.find("TUT_LOG_RUN"), std::string::npos);
  EXPECT_NE(with.find("TUT_LOG_SEND"), std::string::npos);

  Options opt;
  opt.profiling_instrumentation = false;
  const CodeBundle plain = generate(sys.model, opt);
  const std::string& without = plain.find("dsp_filter.c")->content;
  EXPECT_EQ(without.find("TUT_LOG_RUN"), std::string::npos);
  EXPECT_EQ(without.find("TUT_LOG_SEND"), std::string::npos);
}

TEST_F(Generated, ProcessTableListsProcessesWithGroups) {
  const std::string& text = bundle.find("process_table.c")->content;
  EXPECT_NE(text.find("{\"ctrl\", \"Controller\", \"g_ctrl\"}"),
            std::string::npos);
  EXPECT_NE(text.find("{\"dsp2\", \"DspFilter\", \"g_dsp\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tut_process_count"), std::string::npos);
}

TEST_F(Generated, AllFilesHaveBalancedBraces) {
  for (const auto& f : bundle.files) {
    EXPECT_TRUE(balanced_braces(f.content)) << f.path;
  }
}

TEST(CodegenErrors, BehaviorlessComponentThrows) {
  uml::Model model{"m"};
  auto prof = profile::install(model);
  auto& cls = model.create_class("NoSm", nullptr, true);
  cls.apply(*prof.application_component);
  EXPECT_THROW((void)generate(model), std::runtime_error);
}

TEST(CodegenTutmac, GeneratesAllSevenComponents) {
  tutmac::System sys = tutmac::build();
  const CodeBundle bundle = generate(*sys.model);
  for (const char* f :
       {"management.c", "radio_management.c", "radio_channel_access.c",
        "msdu_receiver.c", "msdu_deliverer.c", "fragmenter.c",
        "crc_calculator.c"}) {
    EXPECT_NE(bundle.find(f), nullptr) << f;
  }
  // The rca guard with the modulo expression survives translation.
  const std::string& rca = bundle.find("radio_channel_access.c")->content;
  EXPECT_NE(rca.find("ctx->pending > 0 && ctx->slotcnt % 8 == 0"),
            std::string::npos);
}

// The strongest structural check: the generated TUTMAC C code must be
// accepted by a real C compiler (both with and without TUT_PROFILING).
TEST(CodegenTutmac, GeneratedCodePassesGccSyntaxCheck) {
  if (std::system("gcc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no gcc available";
  }
  tutmac::System sys = tutmac::build();
  const CodeBundle bundle = generate(*sys.model);
  const auto dir =
      std::filesystem::temp_directory_path() / "tut_codegen_test";
  std::filesystem::remove_all(dir);
  bundle.write_to(dir.string());

  for (const char* flags : {"", "-DTUT_PROFILING"}) {
    std::string cmd = "gcc -std=c99 -Wall -Werror -fsyntax-only ";
    cmd += flags;
    for (const auto& f : bundle.files) {
      if (f.path.size() > 2 && f.path.substr(f.path.size() - 2) == ".c") {
        cmd += " " + (dir / f.path).string();
      }
    }
    cmd += " -I" + dir.string() + " 2> " + (dir / "gcc_errors.txt").string();
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::ifstream errs(dir / "gcc_errors.txt");
      std::string text((std::istreambuf_iterator<char>(errs)),
                       std::istreambuf_iterator<char>());
      FAIL() << "gcc rejected generated code (flags '" << flags
             << "'):\n" << text;
    }
  }
  std::filesystem::remove_all(dir);
}
