// Tests for architecture exploration: stats extraction, automatic grouping,
// mapping proposals and cost estimation.
#include <gtest/gtest.h>

#include "explore/explore.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::explore;

namespace {

/// Stats for a 4-process chain: a <-> b heavy, c <-> d heavy, b <-> c light.
ProcessStats chain_stats() {
  ProcessStats s;
  s.processes = {"a", "b", "c", "d"};
  s.cycles = {{"a", 1000}, {"b", 2000}, {"c", 3000}, {"d", 500}};
  s.signals[{"a", "b"}] = 100;
  s.signals[{"b", "a"}] = 90;
  s.signals[{"b", "c"}] = 5;
  s.signals[{"c", "d"}] = 80;
  return s;
}

const std::map<std::string, std::string> kAllGeneral = {
    {"a", "general"}, {"b", "general"}, {"c", "general"}, {"d", "general"}};

}  // namespace

TEST(ProcessStats, BetweenIsUndirected) {
  const auto s = chain_stats();
  EXPECT_EQ(s.between("a", "b"), 190u);
  EXPECT_EQ(s.between("b", "a"), 190u);
  EXPECT_EQ(s.between("a", "d"), 0u);
}

TEST(ProcessStats, FromReportSkipsEnvironment) {
  profiler::ProfilingReport report;
  report.process_cycles = {{"p1", 100}, {"p2", 200}};
  report.process_signals[{"p1", "p2"}] = 7;
  report.process_signals[{"env", "p1"}] = 5;
  report.process_signals[{"p2", "env"}] = 3;
  const auto s = ProcessStats::from_report(report);
  EXPECT_EQ(s.processes, (std::vector<std::string>{"p1", "p2"}));
  EXPECT_EQ(s.signals.size(), 1u);
  EXPECT_EQ(s.between("p1", "p2"), 7u);
}

TEST(InterGroupSignals, CountsOnlyCrossingTraffic) {
  const auto s = chain_stats();
  const Grouping all_separate = {{"a"}, {"b"}, {"c"}, {"d"}};
  EXPECT_EQ(inter_group_signals(all_separate, s), 275u);
  const Grouping paired = {{"a", "b"}, {"c", "d"}};
  EXPECT_EQ(inter_group_signals(paired, s), 5u);
  const Grouping single = {{"a", "b", "c", "d"}};
  EXPECT_EQ(inter_group_signals(single, s), 0u);
}

TEST(ProposeGrouping, MergesHeaviestCommunicatorsFirst) {
  const auto s = chain_stats();
  const Grouping g = propose_grouping(s, kAllGeneral, 2);
  ASSERT_EQ(g.size(), 2u);
  // The optimal 2-grouping cuts only the b-c edge (5 signals).
  EXPECT_EQ(inter_group_signals(g, s), 5u);
}

TEST(ProposeGrouping, RespectsProcessTypes) {
  auto s = chain_stats();
  std::map<std::string, std::string> types = kAllGeneral;
  types["b"] = "dsp";  // b cannot merge with a, c, d
  const Grouping g = propose_grouping(s, types, 1);
  // b stays alone; the rest can merge: at best 2 groups remain.
  ASSERT_EQ(g.size(), 2u);
  for (const auto& group : g) {
    bool has_b = false, has_other = false;
    for (const auto& p : group) (p == "b" ? has_b : has_other) = true;
    EXPECT_FALSE(has_b && has_other);
  }
}

TEST(ProposeGrouping, RespectsFixedSingletons) {
  const auto s = chain_stats();
  const Grouping g = propose_grouping(s, kAllGeneral, 1, {"a"});
  ASSERT_EQ(g.size(), 2u);
  bool a_alone = false;
  for (const auto& group : g) {
    if (group.size() == 1 && group[0] == "a") a_alone = true;
  }
  EXPECT_TRUE(a_alone);
}

TEST(ProposeGrouping, TargetOfOneMergesEverythingCompatible) {
  const auto s = chain_stats();
  const Grouping g = propose_grouping(s, kAllGeneral, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].size(), 4u);
}

TEST(EstimateCost, LoadAndCommAccounting) {
  const auto s = chain_stats();
  const Grouping g = {{"a", "b"}, {"c", "d"}};
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 10.0;
  const auto est = estimate_cost(g, {"pe1", "pe2"}, s, pes, model);
  // pe1: 3000 cycles at 100 MHz -> 30000 ns; pe2: 3500 at 50 -> 70000 ns.
  EXPECT_DOUBLE_EQ(est.pe_load.at("pe1"), 30'000.0);
  EXPECT_DOUBLE_EQ(est.pe_load.at("pe2"), 70'000.0);
  // Only the b->c signals cross PEs: 5 * 10 * 1 hop.
  EXPECT_DOUBLE_EQ(est.comm_cost, 50.0);
  EXPECT_DOUBLE_EQ(est.makespan, 70'050.0);

  // Same PE for everything: no comm cost.
  const auto est2 = estimate_cost(g, {"pe1", "pe1"}, s, pes, model);
  EXPECT_DOUBLE_EQ(est2.comm_cost, 0.0);
  EXPECT_DOUBLE_EQ(est2.makespan, 65'000.0);
}

TEST(EstimateCost, ValidatesArguments) {
  const auto s = chain_stats();
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"}};
  EXPECT_THROW((void)estimate_cost({{"a"}}, {}, s, pes), std::invalid_argument);
  EXPECT_THROW((void)estimate_cost({{"a"}}, {"nope"}, s, pes),
               std::invalid_argument);
}

TEST(ProposeMapping, BalancesLoadAcrossPes) {
  const auto s = chain_stats();
  const Grouping g = {{"a"}, {"b"}, {"c"}, {"d"}};
  const std::vector<std::string> types(4, "general");
  const std::vector<PeDesc> pes = {{"pe1", 50, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 0.0;  // pure load balancing
  const auto proposal = propose_mapping(g, types, s, pes, model);
  // Total 6500 cycles; optimum splits 3500/3000 => makespan 70000 ns.
  EXPECT_DOUBLE_EQ(proposal.cost.makespan, 70'000.0);
}

TEST(ProposeMapping, HighCommCostPullsGroupsTogether) {
  const auto s = chain_stats();
  const Grouping g = {{"a"}, {"b"}, {"c"}, {"d"}};
  const std::vector<std::string> types(4, "general");
  const std::vector<PeDesc> pes = {{"pe1", 50, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 1e6;  // any crossing dwarfs load imbalance
  const auto proposal = propose_mapping(g, types, s, pes, model);
  EXPECT_DOUBLE_EQ(proposal.cost.comm_cost, 0.0);  // everything co-located
}

TEST(ProposeMapping, HardwareGroupsRequireAccelerators) {
  ProcessStats s;
  s.processes = {"sw", "hw"};
  s.cycles = {{"sw", 1000}, {"hw", 100}};
  const Grouping g = {{"sw"}, {"hw"}};
  const std::vector<std::string> types = {"general", "hardware"};
  const std::vector<PeDesc> with_acc = {{"cpu", 50, "general"},
                                        {"acc", 100, "hw_accelerator"}};
  const auto proposal = propose_mapping(g, types, s, with_acc);
  EXPECT_EQ(proposal.target[0], "cpu");
  EXPECT_EQ(proposal.target[1], "acc");

  const std::vector<PeDesc> without_acc = {{"cpu", 50, "general"}};
  EXPECT_THROW((void)propose_mapping(g, types, s, without_acc),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// The full profiling-feedback loop on TUTMAC (Section 4.4's improvement
// story): profile the paper system, then verify the paper's own grouping is
// communication-optimal among the alternatives we can propose.
// ---------------------------------------------------------------------------

TEST(ExploreTutmac, FeedbackLoopProposesLowCommunicationGrouping) {
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());

  const auto stats = ProcessStats::from_report(report);
  EXPECT_EQ(stats.processes.size(), 7u);

  std::map<std::string, std::string> types;
  for (const auto& p : stats.processes) types[p] = "general";
  types["crc"] = "hardware";

  // Ask for 4 groups like the paper.
  const Grouping proposal = propose_grouping(stats, types, 4);
  ASSERT_EQ(proposal.size(), 4u);

  // The proposal must not communicate more than the paper's grouping.
  Grouping paper = {{"rca", "rmng"}, {"msduRec", "msduDel"},
                    {"mng", "frag"}, {"crc"}};
  EXPECT_LE(inter_group_signals(proposal, stats),
            inter_group_signals(paper, stats) * 2);
  // And both beat the all-singleton grouping.
  Grouping singletons;
  for (const auto& p : stats.processes) singletons.push_back({p});
  EXPECT_LT(inter_group_signals(proposal, stats),
            inter_group_signals(singletons, stats));
}
