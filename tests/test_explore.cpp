// Tests for architecture exploration: stats extraction, automatic grouping,
// mapping proposals and cost estimation.
#include <gtest/gtest.h>

#include <random>

#include "explore/explore.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::explore;

namespace {

/// Stats for a 4-process chain: a <-> b heavy, c <-> d heavy, b <-> c light.
ProcessStats chain_stats() {
  ProcessStats s;
  s.processes = {"a", "b", "c", "d"};
  s.cycles = {{"a", 1000}, {"b", 2000}, {"c", 3000}, {"d", 500}};
  s.signals[{"a", "b"}] = 100;
  s.signals[{"b", "a"}] = 90;
  s.signals[{"b", "c"}] = 5;
  s.signals[{"c", "d"}] = 80;
  return s;
}

const std::map<std::string, std::string> kAllGeneral = {
    {"a", "general"}, {"b", "general"}, {"c", "general"}, {"d", "general"}};

}  // namespace

TEST(ProcessStats, BetweenIsUndirected) {
  const auto s = chain_stats();
  EXPECT_EQ(s.between("a", "b"), 190u);
  EXPECT_EQ(s.between("b", "a"), 190u);
  EXPECT_EQ(s.between("a", "d"), 0u);
}

TEST(ProcessStats, FromReportSkipsEnvironment) {
  profiler::ProfilingReport report;
  report.process_cycles = {{"p1", 100}, {"p2", 200}};
  report.process_signals[{"p1", "p2"}] = 7;
  report.process_signals[{"env", "p1"}] = 5;
  report.process_signals[{"p2", "env"}] = 3;
  const auto s = ProcessStats::from_report(report);
  EXPECT_EQ(s.processes, (std::vector<std::string>{"p1", "p2"}));
  EXPECT_EQ(s.signals.size(), 1u);
  EXPECT_EQ(s.between("p1", "p2"), 7u);
}

TEST(InterGroupSignals, CountsOnlyCrossingTraffic) {
  const auto s = chain_stats();
  const Grouping all_separate = {{"a"}, {"b"}, {"c"}, {"d"}};
  EXPECT_EQ(inter_group_signals(all_separate, s), 275u);
  const Grouping paired = {{"a", "b"}, {"c", "d"}};
  EXPECT_EQ(inter_group_signals(paired, s), 5u);
  const Grouping single = {{"a", "b", "c", "d"}};
  EXPECT_EQ(inter_group_signals(single, s), 0u);
}

TEST(CrossingCounter, MatchesFullRecountOnStaticGroupings) {
  const auto s = chain_stats();
  for (const Grouping& g : {Grouping{{"a"}, {"b"}, {"c"}, {"d"}},
                            Grouping{{"a", "b"}, {"c", "d"}},
                            Grouping{{"a", "b", "c", "d"}}}) {
    EXPECT_EQ(CrossingCounter(g, s).crossing(), inter_group_signals(g, s));
  }
}

TEST(CrossingCounter, EmptyStats) {
  ProcessStats s;
  const Grouping g = {{"a"}, {"b"}};
  CrossingCounter counter(g, s);
  EXPECT_EQ(counter.crossing(), 0u);
  EXPECT_EQ(counter.between(0, 1), 0u);
  counter.merge(0, 1);
  EXPECT_EQ(counter.groups(), 1u);
  EXPECT_EQ(counter.crossing(), 0u);
}

TEST(CrossingCounter, MergeDeltaEqualsBetween) {
  const auto s = chain_stats();
  Grouping g = {{"a"}, {"b"}, {"c"}, {"d"}};
  CrossingCounter counter(g, s);
  const std::uint64_t before = counter.crossing();
  const std::uint64_t ab = counter.between(0, 1);
  counter.merge(0, 1);
  EXPECT_EQ(counter.crossing(), before - ab);
}

TEST(CrossingCounter, RejectsSelfMerge) {
  const auto s = chain_stats();
  CrossingCounter counter({{"a"}, {"b"}}, s);
  EXPECT_THROW(counter.merge(0, 0), std::invalid_argument);
  EXPECT_THROW(counter.merge(0, 5), std::invalid_argument);
}

// The load-bearing check for the delta evaluation: random merge sequences on
// random signal tables, cross-checked against the naive full recount (and a
// freshly rebuilt counter) after every single merge.
TEST(CrossingCounter, RandomizedMergesMatchNaiveRecount) {
  std::mt19937 rng(20260807);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + rng() % 10;
    ProcessStats s;
    for (std::size_t i = 0; i < n; ++i) {
      s.processes.push_back("p" + std::to_string(i));
      s.cycles[s.processes.back()] = static_cast<long>(rng() % 1000);
    }
    // Random sparse directed signal table (self-pairs included on purpose;
    // they never cross and must not disturb the counts).
    const std::size_t edges = 2 + rng() % (n * n);
    for (std::size_t e = 0; e < edges; ++e) {
      const auto& from = s.processes[rng() % n];
      const auto& to = s.processes[rng() % n];
      if (from == to) continue;
      s.signals[{from, to}] += rng() % 50;
    }

    Grouping g;
    for (const auto& p : s.processes) g.push_back({p});
    CrossingCounter counter(g, s);
    while (g.size() > 1) {
      std::size_t a = rng() % g.size();
      std::size_t b = rng() % g.size();
      if (a == b) continue;
      g[a].insert(g[a].end(), g[b].begin(), g[b].end());
      g.erase(g.begin() + static_cast<std::ptrdiff_t>(b));
      counter.merge(a, b);
      ASSERT_EQ(counter.crossing(), inter_group_signals(g, s))
          << "trial " << trial << " at " << g.size() << " groups";
      // The incrementally maintained matrix must equal a rebuilt one.
      CrossingCounter rebuilt(g, s);
      for (std::size_t i = 0; i < g.size(); ++i) {
        for (std::size_t j = i + 1; j < g.size(); ++j) {
          ASSERT_EQ(counter.between(i, j), rebuilt.between(i, j));
        }
      }
    }
    EXPECT_EQ(counter.crossing(), 0u);  // one group left: nothing crosses
  }
}

TEST(ProposeGrouping, MergesHeaviestCommunicatorsFirst) {
  const auto s = chain_stats();
  const Grouping g = propose_grouping(s, kAllGeneral, 2);
  ASSERT_EQ(g.size(), 2u);
  // The optimal 2-grouping cuts only the b-c edge (5 signals).
  EXPECT_EQ(inter_group_signals(g, s), 5u);
}

TEST(ProposeGrouping, RespectsProcessTypes) {
  auto s = chain_stats();
  std::map<std::string, std::string> types = kAllGeneral;
  types["b"] = "dsp";  // b cannot merge with a, c, d
  const Grouping g = propose_grouping(s, types, 1);
  // b stays alone; the rest can merge: at best 2 groups remain.
  ASSERT_EQ(g.size(), 2u);
  for (const auto& group : g) {
    bool has_b = false, has_other = false;
    for (const auto& p : group) (p == "b" ? has_b : has_other) = true;
    EXPECT_FALSE(has_b && has_other);
  }
}

TEST(ProposeGrouping, RespectsFixedSingletons) {
  const auto s = chain_stats();
  const Grouping g = propose_grouping(s, kAllGeneral, 1, {"a"});
  ASSERT_EQ(g.size(), 2u);
  bool a_alone = false;
  for (const auto& group : g) {
    if (group.size() == 1 && group[0] == "a") a_alone = true;
  }
  EXPECT_TRUE(a_alone);
}

TEST(ProposeGrouping, TargetOfOneMergesEverythingCompatible) {
  const auto s = chain_stats();
  const Grouping g = propose_grouping(s, kAllGeneral, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].size(), 4u);
}

TEST(ProposeGroupingRandomized, DeterministicPerSeedAndCoversConstraints) {
  const auto s = chain_stats();
  std::map<std::string, std::string> types = kAllGeneral;
  types["b"] = "dsp";
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const Grouping g1 = propose_grouping_randomized(s, types, 1, seed, 3, {"a"});
    const Grouping g2 = propose_grouping_randomized(s, types, 1, seed, 3, {"a"});
    EXPECT_EQ(g1, g2);  // same seed, same result
    // Constraints hold on every randomized variant: "a" pinned alone and
    // the dsp process "b" never merged with general processes.
    for (const auto& group : g1) {
      if (group.size() > 1) {
        for (const auto& p : group) {
          EXPECT_NE(p, "a");
          EXPECT_NE(p, "b");
        }
      }
    }
  }
}

TEST(ProposeGroupingRandomized, BreadthOneEqualsGreedy) {
  const auto s = chain_stats();
  for (std::size_t target = 1; target <= 4; ++target) {
    const Grouping greedy = propose_grouping(s, kAllGeneral, target);
    const Grouping random =
        propose_grouping_randomized(s, kAllGeneral, target, 99, 1);
    EXPECT_EQ(greedy, random);
  }
}

TEST(CostEvaluator, MatchesEstimateCostAndMemoizes) {
  const auto s = chain_stats();
  const Grouping g = {{"a", "b"}, {"c", "d"}};
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 10.0;
  CostEvaluator eval(g, s, pes, model);
  for (const std::vector<std::string>& target :
       {std::vector<std::string>{"pe1", "pe2"},
        std::vector<std::string>{"pe2", "pe1"},
        std::vector<std::string>{"pe1", "pe1"}}) {
    const CostEstimate expect = estimate_cost(g, target, s, pes, model);
    const CostEstimate& got = eval.evaluate(target);
    EXPECT_EQ(got.pe_load, expect.pe_load);
    EXPECT_DOUBLE_EQ(got.comm_cost, expect.comm_cost);
    EXPECT_DOUBLE_EQ(got.makespan, expect.makespan);
  }
  EXPECT_EQ(eval.misses(), 3u);
  // Re-evaluating hits the memo.
  (void)eval.evaluate({"pe1", "pe2"});
  EXPECT_EQ(eval.lookups(), 4u);
  EXPECT_EQ(eval.misses(), 3u);

  EXPECT_THROW((void)eval.evaluate({"pe1"}), std::invalid_argument);
  EXPECT_THROW((void)eval.evaluate({"pe1", "nope"}), std::invalid_argument);
  EXPECT_THROW((void)eval.evaluate_ids({0, 9}), std::invalid_argument);
}

TEST(CostEvaluator, RandomizedTargetsMatchEstimateCost) {
  std::mt19937 rng(7);
  const auto s = chain_stats();
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"},
                                   {"pe2", 50, "general"},
                                   {"pe3", 0, "general"}};  // 0 -> 50 fallback
  const Grouping g = {{"a"}, {"b"}, {"c"}, {"d"}};
  CostEvaluator eval(g, s, pes);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::string> target;
    std::vector<std::uint32_t> ids;
    for (std::size_t j = 0; j < g.size(); ++j) {
      const std::uint32_t p = rng() % pes.size();
      ids.push_back(p);
      target.push_back(pes[p].name);
    }
    const CostEstimate expect = estimate_cost(g, target, s, pes);
    const CostEstimate& got = eval.evaluate_ids(ids);
    EXPECT_EQ(got.pe_load, expect.pe_load);
    EXPECT_DOUBLE_EQ(got.comm_cost, expect.comm_cost);
    EXPECT_DOUBLE_EQ(got.makespan, expect.makespan);
  }
}

TEST(EstimateCost, LoadAndCommAccounting) {
  const auto s = chain_stats();
  const Grouping g = {{"a", "b"}, {"c", "d"}};
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 10.0;
  const auto est = estimate_cost(g, {"pe1", "pe2"}, s, pes, model);
  // pe1: 3000 cycles at 100 MHz -> 30000 ns; pe2: 3500 at 50 -> 70000 ns.
  EXPECT_DOUBLE_EQ(est.pe_load.at("pe1"), 30'000.0);
  EXPECT_DOUBLE_EQ(est.pe_load.at("pe2"), 70'000.0);
  // Only the b->c signals cross PEs: 5 * 10 * 1 hop.
  EXPECT_DOUBLE_EQ(est.comm_cost, 50.0);
  EXPECT_DOUBLE_EQ(est.makespan, 70'050.0);

  // Same PE for everything: no comm cost.
  const auto est2 = estimate_cost(g, {"pe1", "pe1"}, s, pes, model);
  EXPECT_DOUBLE_EQ(est2.comm_cost, 0.0);
  EXPECT_DOUBLE_EQ(est2.makespan, 65'000.0);
}

TEST(CostEvaluator, FaultScenarioAddsWeightedDegradedCost) {
  const auto s = chain_stats();
  const Grouping g = {{"a", "b"}, {"c", "d"}};
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 10.0;
  model.fault_scenarios.push_back({{"pe2"}, 1.0});
  CostEvaluator eval(g, s, pes, model);
  const CostEstimate& est = eval.evaluate({"pe1", "pe2"});
  // Healthy numbers are untouched by the scenario term.
  EXPECT_DOUBLE_EQ(est.makespan, 70'050.0);
  // With pe2 down, group {c,d} (3500 cycles) joins {a,b} on pe1 at 100 MHz:
  // 30'000 + 35'000 load, and co-location removes all communication.
  EXPECT_DOUBLE_EQ(est.fault_cost, 65'000.0);
  EXPECT_DOUBLE_EQ(est.total(), est.makespan + est.fault_cost);

  // The weight scales the term linearly.
  CostModel half = model;
  half.fault_scenarios[0].weight = 0.5;
  CostEvaluator heval(g, s, pes, half);
  EXPECT_DOUBLE_EQ(heval.evaluate({"pe1", "pe2"}).fault_cost, 32'500.0);

  // No scenarios: fault_cost stays zero and total() degenerates to makespan.
  CostModel no_scenarios;
  no_scenarios.hop_cost = 10.0;
  CostEvaluator plain(g, s, pes, no_scenarios);
  const CostEstimate& p = plain.evaluate({"pe1", "pe2"});
  EXPECT_DOUBLE_EQ(p.fault_cost, 0.0);
  EXPECT_DOUBLE_EQ(p.total(), p.makespan);
}

TEST(CostEvaluator, FaultScenarioValidation) {
  const auto s = chain_stats();
  const Grouping g = {{"a", "b"}, {"c", "d"}};
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"},
                                   {"pe2", 50, "general"}};
  CostModel unknown;
  unknown.fault_scenarios.push_back({{"ghost"}, 1.0});
  EXPECT_THROW((CostEvaluator{g, s, pes, unknown}), std::invalid_argument);
  CostModel wipeout;
  wipeout.fault_scenarios.push_back({{"pe1", "pe2"}, 1.0});
  EXPECT_THROW((CostEvaluator{g, s, pes, wipeout}), std::invalid_argument);
}

TEST(EstimateCost, ValidatesArguments) {
  const auto s = chain_stats();
  const std::vector<PeDesc> pes = {{"pe1", 100, "general"}};
  EXPECT_THROW((void)estimate_cost({{"a"}}, {}, s, pes), std::invalid_argument);
  EXPECT_THROW((void)estimate_cost({{"a"}}, {"nope"}, s, pes),
               std::invalid_argument);
}

TEST(ProposeMapping, BalancesLoadAcrossPes) {
  const auto s = chain_stats();
  const Grouping g = {{"a"}, {"b"}, {"c"}, {"d"}};
  const std::vector<std::string> types(4, "general");
  const std::vector<PeDesc> pes = {{"pe1", 50, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 0.0;  // pure load balancing
  const auto proposal = propose_mapping(g, types, s, pes, model);
  // Total 6500 cycles; optimum splits 3500/3000 => makespan 70000 ns.
  EXPECT_DOUBLE_EQ(proposal.cost.makespan, 70'000.0);
}

TEST(ProposeMapping, HighCommCostPullsGroupsTogether) {
  const auto s = chain_stats();
  const Grouping g = {{"a"}, {"b"}, {"c"}, {"d"}};
  const std::vector<std::string> types(4, "general");
  const std::vector<PeDesc> pes = {{"pe1", 50, "general"},
                                   {"pe2", 50, "general"}};
  CostModel model;
  model.hop_cost = 1e6;  // any crossing dwarfs load imbalance
  const auto proposal = propose_mapping(g, types, s, pes, model);
  EXPECT_DOUBLE_EQ(proposal.cost.comm_cost, 0.0);  // everything co-located
}

TEST(ProposeMapping, HardwareGroupsRequireAccelerators) {
  ProcessStats s;
  s.processes = {"sw", "hw"};
  s.cycles = {{"sw", 1000}, {"hw", 100}};
  const Grouping g = {{"sw"}, {"hw"}};
  const std::vector<std::string> types = {"general", "hardware"};
  const std::vector<PeDesc> with_acc = {{"cpu", 50, "general"},
                                        {"acc", 100, "hw_accelerator"}};
  const auto proposal = propose_mapping(g, types, s, with_acc);
  EXPECT_EQ(proposal.target[0], "cpu");
  EXPECT_EQ(proposal.target[1], "acc");

  const std::vector<PeDesc> without_acc = {{"cpu", 50, "general"}};
  EXPECT_THROW((void)propose_mapping(g, types, s, without_acc),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// The full profiling-feedback loop on TUTMAC (Section 4.4's improvement
// story): profile the paper system, then verify the paper's own grouping is
// communication-optimal among the alternatives we can propose.
// ---------------------------------------------------------------------------

TEST(ExploreTutmac, FeedbackLoopProposesLowCommunicationGrouping) {
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());

  const auto stats = ProcessStats::from_report(report);
  EXPECT_EQ(stats.processes.size(), 7u);

  std::map<std::string, std::string> types;
  for (const auto& p : stats.processes) types[p] = "general";
  types["crc"] = "hardware";

  // Ask for 4 groups like the paper.
  const Grouping proposal = propose_grouping(stats, types, 4);
  ASSERT_EQ(proposal.size(), 4u);

  // The proposal must not communicate more than the paper's grouping.
  Grouping paper = {{"rca", "rmng"}, {"msduRec", "msduDel"},
                    {"mng", "frag"}, {"crc"}};
  EXPECT_LE(inter_group_signals(proposal, stats),
            inter_group_signals(paper, stats) * 2);
  // And both beat the all-singleton grouping.
  Grouping singletons;
  for (const auto& p : stats.processes) singletons.push_back({p});
  EXPECT_LT(inter_group_signals(proposal, stats),
            inter_group_signals(singletons, stats));
}
