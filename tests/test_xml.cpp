// Unit and property tests for tut::xml (writer, parser, round trips).
#include <gtest/gtest.h>

#include <string>

#include "xml/xml.hpp"

namespace x = tut::xml;

TEST(XmlElement, AttributesPreserveInsertionOrderAndReplace) {
  x::Element e("node");
  e.set_attr("b", "2").set_attr("a", "1").set_attr("b", "3");
  ASSERT_EQ(e.attrs().size(), 2u);
  EXPECT_EQ(e.attrs()[0].first, "b");
  EXPECT_EQ(e.attrs()[0].second, "3");
  EXPECT_EQ(e.attrs()[1].first, "a");
  EXPECT_EQ(e.attr_or("a", "x"), "1");
  EXPECT_EQ(e.attr_or("missing", "x"), "x");
  EXPECT_FALSE(e.attr("missing").has_value());
  EXPECT_TRUE(e.has_attr("a"));
}

TEST(XmlElement, ChildLookup) {
  x::Element e("root");
  e.add_child("a").set_attr("i", "0");
  e.add_child("b");
  e.add_child("a").set_attr("i", "1");
  ASSERT_NE(e.child("a"), nullptr);
  EXPECT_EQ(e.child("a")->attr_or("i", ""), "0");
  EXPECT_EQ(e.child("missing"), nullptr);
  EXPECT_EQ(e.children_named("a").size(), 2u);
  EXPECT_EQ(e.subtree_size(), 4u);
}

TEST(XmlWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(x::escape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
}

TEST(XmlWriter, SelfClosesEmptyElements) {
  x::Document doc("empty");
  EXPECT_EQ(x::write(doc), "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<empty/>\n");
}

TEST(XmlWriter, WritesTextContent) {
  x::Document doc("t");
  doc.root().set_text("a < b");
  EXPECT_NE(x::write(doc).find("<t>a &lt; b</t>"), std::string::npos);
}

TEST(XmlParser, ParsesDeclarationCommentsAndNesting) {
  const auto doc = x::parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- header comment -->\n"
      "<root a=\"1\">\n"
      "  <child b='two'><leaf/></child>\n"
      "  <!-- inner comment -->\n"
      "  <child b=\"three\"/>\n"
      "</root>");
  EXPECT_EQ(doc.root().name(), "root");
  EXPECT_EQ(doc.root().attr_or("a", ""), "1");
  ASSERT_EQ(doc.root().children_named("child").size(), 2u);
  EXPECT_EQ(doc.root().children_named("child")[0]->attr_or("b", ""), "two");
  EXPECT_NE(doc.root().children_named("child")[0]->child("leaf"), nullptr);
}

TEST(XmlParser, DecodesEntitiesInTextAndAttributes) {
  const auto doc =
      x::parse("<r a=\"&lt;&amp;&gt;\">x &#65;&#x42; &quot;q&quot;</r>");
  EXPECT_EQ(doc.root().attr_or("a", ""), "<&>");
  EXPECT_EQ(doc.root().text(), "x AB \"q\"");
}

TEST(XmlParser, DecodesMultibyteCharacterReferences) {
  const auto doc = x::parse("<r>&#228;&#x20AC;</r>");
  EXPECT_EQ(doc.root().text(), "\xC3\xA4\xE2\x82\xAC");  // ä €
}

TEST(XmlParser, ParsesCdata) {
  const auto doc = x::parse("<r><![CDATA[a < b & c]]></r>");
  EXPECT_EQ(doc.root().text(), "a < b & c");
}

TEST(XmlParser, SkipsDoctype) {
  const auto doc = x::parse("<!DOCTYPE r [<!ELEMENT r EMPTY>]><r/>");
  EXPECT_EQ(doc.root().name(), "r");
}

TEST(XmlParser, TrimsInterElementWhitespaceButKeepsInnerText) {
  const auto doc = x::parse("<r>\n  hello world  \n</r>");
  EXPECT_EQ(doc.root().text(), "hello world");
}

struct BadInput {
  const char* label;
  const char* text;
};

class XmlParserRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserRejects, ThrowsParseError) {
  EXPECT_THROW((void)x::parse(GetParam().text), x::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserRejects,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"unclosed_root", "<r>"},
        BadInput{"mismatched_tags", "<a></b>"},
        BadInput{"trailing_garbage", "<a/><b/>"},
        BadInput{"bad_entity", "<a>&nosuch;</a>"},
        BadInput{"unterminated_comment", "<!-- <a/>"},
        BadInput{"unterminated_attr", "<a b=\"1/>"},
        BadInput{"lt_in_attr", "<a b=\"<\"/>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"missing_attr_value", "<a b=/>"},
        BadInput{"bad_charref", "<a>&#zz;</a>"},
        BadInput{"charref_out_of_range", "<a>&#1114112;</a>"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(XmlParser, ReportsLineNumbers) {
  try {
    (void)x::parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const x::ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

// Property: write(parse(write(doc))) is a fixed point — structural round trip.
TEST(XmlRoundTrip, WriterParserFixedPoint) {
  x::Document doc("model");
  doc.root().set_attr("name", "m&m <quoted>");
  auto& a = doc.root().add_child("a");
  a.set_attr("k", "v\"w'");
  a.add_child("leaf").set_text("text & <markup>");
  doc.root().add_child("b");

  const std::string once = x::write(doc);
  const auto reparsed = x::parse(once);
  const std::string twice = x::write(reparsed);
  EXPECT_EQ(once, twice);
}

class XmlRoundTripDepth : public ::testing::TestWithParam<int> {};

// Property: deeply nested documents round-trip with size preserved.
TEST_P(XmlRoundTripDepth, PreservesSubtreeSize) {
  x::Document doc("d0");
  x::Element* cur = &doc.root();
  for (int i = 1; i <= GetParam(); ++i) {
    cur = &cur->add_child("d" + std::to_string(i));
    cur->set_attr("depth", std::to_string(i));
  }
  const auto reparsed = x::parse(x::write(doc));
  EXPECT_EQ(reparsed.root().subtree_size(), doc.root().subtree_size());
}

INSTANTIATE_TEST_SUITE_P(Depths, XmlRoundTripDepth,
                         ::testing::Values(1, 4, 16, 64, 256));

// Property: truncating a well-formed document at any point either parses
// (truncation fell after the root element) or throws ParseError — the
// parser never crashes or hangs on malformed prefixes.
TEST(XmlRobustness, TruncatedInputNeverCrashes) {
  x::Document doc("model");
  auto& a = doc.root().add_child("item");
  a.set_attr("name", "value with <escapes> & quotes");
  a.add_child("leaf").set_text("payload &#65;");
  doc.root().add_child("empty");
  const std::string full = x::write(doc);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    try {
      (void)x::parse(full.substr(0, cut));
    } catch (const x::ParseError&) {
      // Expected for most prefixes.
    }
  }
  SUCCEED();
}

// Property: single-character corruption never crashes the parser.
TEST(XmlRobustness, CorruptedInputNeverCrashes) {
  const std::string full =
      "<root a=\"1\"><child b='two'><leaf/></child>text &amp; more</root>";
  for (std::size_t i = 0; i < full.size(); ++i) {
    for (char c : {'<', '>', '&', '"', '\0', 'x'}) {
      std::string mutated = full;
      mutated[i] = c;
      try {
        (void)x::parse(mutated);
      } catch (const x::ParseError&) {
      }
    }
  }
  SUCCEED();
}
