// Unit and property tests for tut::xml (writer, parser, round trips).
#include <gtest/gtest.h>

#include <string>

#include "xml/xml.hpp"

namespace x = tut::xml;

TEST(XmlElement, AttributesPreserveInsertionOrderAndReplace) {
  x::Element e("node");
  e.set_attr("b", "2").set_attr("a", "1").set_attr("b", "3");
  ASSERT_EQ(e.attrs().size(), 2u);
  EXPECT_EQ(e.attrs()[0].first, "b");
  EXPECT_EQ(e.attrs()[0].second, "3");
  EXPECT_EQ(e.attrs()[1].first, "a");
  EXPECT_EQ(e.attr_or("a", "x"), "1");
  EXPECT_EQ(e.attr_or("missing", "x"), "x");
  EXPECT_FALSE(e.attr("missing").has_value());
  EXPECT_TRUE(e.has_attr("a"));
}

TEST(XmlElement, ChildLookup) {
  x::Element e("root");
  e.add_child("a").set_attr("i", "0");
  e.add_child("b");
  e.add_child("a").set_attr("i", "1");
  ASSERT_NE(e.child("a"), nullptr);
  EXPECT_EQ(e.child("a")->attr_or("i", ""), "0");
  EXPECT_EQ(e.child("missing"), nullptr);
  EXPECT_EQ(e.children_named("a").size(), 2u);
  EXPECT_EQ(e.subtree_size(), 4u);
}

TEST(XmlWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(x::escape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
}

TEST(XmlWriter, SelfClosesEmptyElements) {
  x::Document doc("empty");
  EXPECT_EQ(x::write(doc), "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<empty/>\n");
}

TEST(XmlWriter, WritesTextContent) {
  x::Document doc("t");
  doc.root().set_text("a < b");
  EXPECT_NE(x::write(doc).find("<t>a &lt; b</t>"), std::string::npos);
}

TEST(XmlParser, ParsesDeclarationCommentsAndNesting) {
  const auto doc = x::parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- header comment -->\n"
      "<root a=\"1\">\n"
      "  <child b='two'><leaf/></child>\n"
      "  <!-- inner comment -->\n"
      "  <child b=\"three\"/>\n"
      "</root>");
  EXPECT_EQ(doc.root().name(), "root");
  EXPECT_EQ(doc.root().attr_or("a", ""), "1");
  ASSERT_EQ(doc.root().children_named("child").size(), 2u);
  EXPECT_EQ(doc.root().children_named("child")[0]->attr_or("b", ""), "two");
  EXPECT_NE(doc.root().children_named("child")[0]->child("leaf"), nullptr);
}

TEST(XmlParser, DecodesEntitiesInTextAndAttributes) {
  const auto doc =
      x::parse("<r a=\"&lt;&amp;&gt;\">x &#65;&#x42; &quot;q&quot;</r>");
  EXPECT_EQ(doc.root().attr_or("a", ""), "<&>");
  EXPECT_EQ(doc.root().text(), "x AB \"q\"");
}

TEST(XmlParser, DecodesMultibyteCharacterReferences) {
  const auto doc = x::parse("<r>&#228;&#x20AC;</r>");
  EXPECT_EQ(doc.root().text(), "\xC3\xA4\xE2\x82\xAC");  // ä €
}

TEST(XmlParser, ParsesCdata) {
  const auto doc = x::parse("<r><![CDATA[a < b & c]]></r>");
  EXPECT_EQ(doc.root().text(), "a < b & c");
}

TEST(XmlParser, SkipsDoctype) {
  const auto doc = x::parse("<!DOCTYPE r [<!ELEMENT r EMPTY>]><r/>");
  EXPECT_EQ(doc.root().name(), "r");
}

TEST(XmlParser, TrimsInterElementWhitespaceButKeepsInnerText) {
  const auto doc = x::parse("<r>\n  hello world  \n</r>");
  EXPECT_EQ(doc.root().text(), "hello world");
}

struct BadInput {
  const char* label;
  const char* text;
};

class XmlParserRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserRejects, ThrowsParseError) {
  EXPECT_THROW((void)x::parse(GetParam().text), x::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserRejects,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"unclosed_root", "<r>"},
        BadInput{"mismatched_tags", "<a></b>"},
        BadInput{"trailing_garbage", "<a/><b/>"},
        BadInput{"bad_entity", "<a>&nosuch;</a>"},
        BadInput{"unterminated_comment", "<!-- <a/>"},
        BadInput{"unterminated_attr", "<a b=\"1/>"},
        BadInput{"lt_in_attr", "<a b=\"<\"/>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"missing_attr_value", "<a b=/>"},
        BadInput{"bad_charref", "<a>&#zz;</a>"},
        BadInput{"charref_out_of_range", "<a>&#1114112;</a>"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(XmlParser, ReportsLineNumbers) {
  try {
    (void)x::parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const x::ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

// Property: write(parse(write(doc))) is a fixed point — structural round trip.
TEST(XmlRoundTrip, WriterParserFixedPoint) {
  x::Document doc("model");
  doc.root().set_attr("name", "m&m <quoted>");
  auto& a = doc.root().add_child("a");
  a.set_attr("k", "v\"w'");
  a.add_child("leaf").set_text("text & <markup>");
  doc.root().add_child("b");

  const std::string once = x::write(doc);
  const auto reparsed = x::parse(once);
  const std::string twice = x::write(reparsed);
  EXPECT_EQ(once, twice);
}

class XmlRoundTripDepth : public ::testing::TestWithParam<int> {};

// Property: deeply nested documents round-trip with size preserved.
TEST_P(XmlRoundTripDepth, PreservesSubtreeSize) {
  x::Document doc("d0");
  x::Element* cur = &doc.root();
  for (int i = 1; i <= GetParam(); ++i) {
    cur = &cur->add_child("d" + std::to_string(i));
    cur->set_attr("depth", std::to_string(i));
  }
  const auto reparsed = x::parse(x::write(doc));
  EXPECT_EQ(reparsed.root().subtree_size(), doc.root().subtree_size());
}

INSTANTIATE_TEST_SUITE_P(Depths, XmlRoundTripDepth,
                         ::testing::Values(1, 4, 16, 64, 256));

// Property: truncating a well-formed document at any point either parses
// (truncation fell after the root element) or throws ParseError — the
// parser never crashes or hangs on malformed prefixes.
TEST(XmlRobustness, TruncatedInputNeverCrashes) {
  x::Document doc("model");
  auto& a = doc.root().add_child("item");
  a.set_attr("name", "value with <escapes> & quotes");
  a.add_child("leaf").set_text("payload &#65;");
  doc.root().add_child("empty");
  const std::string full = x::write(doc);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    try {
      (void)x::parse(full.substr(0, cut));
    } catch (const x::ParseError&) {
      // Expected for most prefixes.
    }
  }
  SUCCEED();
}

// Property: single-character corruption never crashes the parser.
TEST(XmlRobustness, CorruptedInputNeverCrashes) {
  const std::string full =
      "<root a=\"1\"><child b='two'><leaf/></child>text &amp; more</root>";
  for (std::size_t i = 0; i < full.size(); ++i) {
    for (char c : {'<', '>', '&', '"', '\0', 'x'}) {
      std::string mutated = full;
      mutated[i] = c;
      try {
        (void)x::parse(mutated);
      } catch (const x::ParseError&) {
      }
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Pull cursor (zero-copy tokenizer)
// ---------------------------------------------------------------------------

#include <random>

#include "xml/arena.hpp"
#include "xml/cursor.hpp"
#include "xml/tree.hpp"

namespace {

// True if `view` aliases bytes inside `buffer` (the zero-copy contract).
bool aliases(std::string_view view, std::string_view buffer) {
  return view.data() >= buffer.data() &&
         view.data() + view.size() <= buffer.data() + buffer.size();
}

}  // namespace

TEST(XmlCursor, YieldsDocumentOrderEvents) {
  const std::string_view in = "<r a=\"1\"><c>hi</c><d/></r>";
  x::Arena arena;
  x::Cursor cur(in, arena);
  using E = x::Cursor::Event;

  ASSERT_EQ(cur.next(), E::StartElement);
  EXPECT_EQ(cur.name(), "r");
  ASSERT_EQ(cur.attr_count(), 1u);
  EXPECT_EQ(cur.attr_key(0), "a");
  EXPECT_EQ(cur.attr_value(0), "1");
  EXPECT_FALSE(cur.self_closing());
  EXPECT_EQ(cur.depth(), 1u);

  ASSERT_EQ(cur.next(), E::StartElement);
  EXPECT_EQ(cur.name(), "c");
  EXPECT_EQ(cur.depth(), 2u);
  ASSERT_EQ(cur.next(), E::Text);
  EXPECT_EQ(cur.text(), "hi");
  ASSERT_EQ(cur.next(), E::EndElement);
  EXPECT_EQ(cur.name(), "c");

  ASSERT_EQ(cur.next(), E::StartElement);
  EXPECT_EQ(cur.name(), "d");
  EXPECT_TRUE(cur.self_closing());
  ASSERT_EQ(cur.next(), E::EndElement);
  EXPECT_EQ(cur.name(), "d");

  ASSERT_EQ(cur.next(), E::EndElement);
  EXPECT_EQ(cur.name(), "r");
  EXPECT_EQ(cur.next(), E::End);
  EXPECT_EQ(cur.next(), E::End);  // idempotent at end
}

TEST(XmlCursor, CleanRunsAliasTheInputBuffer) {
  const std::string_view in = "<r key=\"plain value\">some text</r>";
  x::Arena arena;
  x::Cursor cur(in, arena);
  ASSERT_EQ(cur.next(), x::Cursor::Event::StartElement);
  EXPECT_TRUE(aliases(cur.name(), in));
  EXPECT_TRUE(aliases(cur.attr_key(0), in));
  EXPECT_TRUE(aliases(cur.attr_value(0), in));
  ASSERT_EQ(cur.next(), x::Cursor::Event::Text);
  EXPECT_TRUE(aliases(cur.text(), in));
  EXPECT_EQ(arena.bytes_used(), 0u);  // nothing decoded, nothing allocated
}

TEST(XmlCursor, EntityRunsDecodeIntoTheArena) {
  const std::string_view in = "<r a=\"x&amp;y\">1 &lt; 2</r>";
  x::Arena arena;
  x::Cursor cur(in, arena);
  ASSERT_EQ(cur.next(), x::Cursor::Event::StartElement);
  EXPECT_EQ(cur.attr_value(0), "x&y");
  EXPECT_FALSE(aliases(cur.attr_value(0), in));
  ASSERT_EQ(cur.next(), x::Cursor::Event::Text);
  EXPECT_EQ(cur.text(), "1 < 2");
  EXPECT_FALSE(aliases(cur.text(), in));
  EXPECT_GT(arena.bytes_used(), 0u);
}

TEST(XmlCursor, ViewsSurviveLaterEvents) {
  const std::string_view in = "<r><a k=\"v&amp;w\">t1</a><b>t2</b></r>";
  x::Arena arena;
  x::Cursor cur(in, arena);
  using E = x::Cursor::Event;
  ASSERT_EQ(cur.next(), E::StartElement);  // r
  ASSERT_EQ(cur.next(), E::StartElement);  // a
  const auto key = cur.attr_key(0);
  const auto val = cur.attr_value(0);
  ASSERT_EQ(cur.next(), E::Text);
  const auto t1 = cur.text();
  while (cur.next() != E::End) {
  }
  EXPECT_EQ(key, "k");
  EXPECT_EQ(val, "v&w");
  EXPECT_EQ(t1, "t1");
}

TEST(XmlCursor, ReportsWhitespaceOnlyRuns) {
  // DOM-compatible consumers need the runs to reproduce mixed content.
  const std::string_view in = "<r>  <a/>  </r>";
  x::Arena arena;
  x::Cursor cur(in, arena);
  using E = x::Cursor::Event;
  std::vector<E> events;
  for (E e = cur.next(); e != E::End; e = cur.next()) events.push_back(e);
  const std::vector<E> expected = {E::StartElement, E::Text, E::StartElement,
                                   E::EndElement,   E::Text, E::EndElement};
  EXPECT_EQ(events, expected);
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(XmlArena, BumpAllocatesAndGrows) {
  x::Arena arena(64);
  char* a = arena.allocate_bytes(10);
  char* b = arena.allocate_bytes(10);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.bytes_used(), 20u);
  // Force chunk growth well past the first chunk.
  for (int i = 0; i < 100; ++i) (void)arena.allocate_bytes(64);
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(XmlArena, StoreCopiesAndShrinkReclaims) {
  x::Arena arena(256);
  const std::string_view s = arena.store("hello");
  EXPECT_EQ(s, "hello");
  const std::size_t used = arena.bytes_used();
  char* buf = arena.allocate_bytes(100);
  buf[0] = 'x';
  arena.shrink_last(buf, 100, 1);
  EXPECT_EQ(arena.bytes_used(), used + 1);
}

// ---------------------------------------------------------------------------
// Arena-backed tree
// ---------------------------------------------------------------------------

TEST(XmlTree, NavigatesLikeTheDom) {
  const std::string in =
      "<root a=\"1\">\n"
      "  <child b='two'><leaf/></child>\n"
      "  <child b=\"three\"/>\n"
      "</root>";
  const auto tree = x::Tree::parse(in);
  const x::Node& root = tree.root();
  EXPECT_EQ(root.name(), "root");
  EXPECT_EQ(root.attr_or("a", ""), "1");
  ASSERT_EQ(root.children_named("child").size(), 2u);
  EXPECT_EQ(root.children_named("child")[0]->attr_or("b", ""), "two");
  EXPECT_NE(root.children_named("child")[0]->child("leaf"), nullptr);
  EXPECT_EQ(root.subtree_size(), 4u);
  EXPECT_FALSE(root.attr_view("missing").has_value());
}

TEST(XmlTree, TrimsAndConcatenatesTextRuns) {
  // Single clean run: trimmed view into the input, no copy.
  const std::string one = "<r>\n  hello world  \n</r>";
  const auto t1 = x::Tree::parse(one);
  EXPECT_EQ(t1.root().text(), "hello world");
  EXPECT_TRUE(aliases(t1.root().text(), one));

  // CDATA + entity + element boundaries: concatenated then trimmed,
  // exactly like the DOM parser.
  const std::string many = "<r> a<b/>b &amp; <![CDATA[c < d]]> </r>";
  const auto t2 = x::Tree::parse(many);
  const auto dom = x::parse(many);
  EXPECT_EQ(t2.root().text(), dom.root().text());
}

TEST(XmlTree, DuplicateAttrsKeepFirstPositionLastValue) {
  const std::string in = "<r b=\"2\" a=\"1\" b=\"3\"/>";
  const auto tree = x::Tree::parse(in);
  ASSERT_EQ(tree.root().attr_count(), 2u);
  EXPECT_EQ(tree.root().attrs_begin()[0].key, "b");
  EXPECT_EQ(tree.root().attrs_begin()[0].value, "3");
  EXPECT_EQ(tree.root().attrs_begin()[1].key, "a");
}

namespace {

// Structural equality between the mutable DOM and the arena tree.
void expect_same_shape(const x::Element& e, const x::Node& n) {
  EXPECT_EQ(e.name(), n.name());
  EXPECT_EQ(e.text(), n.text());
  ASSERT_EQ(e.attrs().size(), n.attr_count());
  for (std::size_t i = 0; i < n.attr_count(); ++i) {
    EXPECT_EQ(e.attrs()[i].first, n.attrs_begin()[i].key);
    EXPECT_EQ(e.attrs()[i].second, n.attrs_begin()[i].value);
  }
  auto it = n.children().begin();
  for (const auto& c : e.children()) {
    ASSERT_NE(it, n.children().end());
    expect_same_shape(*c, *it);
    ++it;
  }
  EXPECT_EQ(it, n.children().end());
}

}  // namespace

class XmlDomTreeEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlDomTreeEquivalence, BothParsersAgree) {
  const std::string in = GetParam();
  const auto dom = x::parse(in);
  const auto tree = x::Tree::parse(in);
  expect_same_shape(dom.root(), tree.root());
  // And the DOM's serialization is a fixed point of the shared tokenizer.
  EXPECT_EQ(x::write(dom), x::write(x::parse(x::write(dom))));
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, XmlDomTreeEquivalence,
    ::testing::Values(
        "<r/>",
        "<r a=\"1\" b=\"two\"><c><d x=\"&lt;&amp;&gt;\"/></c><c/></r>",
        "<?xml version=\"1.0\"?><!-- c --><r>text &#228; more</r>",
        "<!DOCTYPE r [<!ELEMENT r ANY>]><r><![CDATA[a < b]]></r>",
        "<r>\n  <a>one</a>\n  <b>two</b>\n  mixed\n</r>",
        "<deep><deep><deep><deep><leaf v=\"&quot;q&quot;\"/>"
        "</deep></deep></deep></deep>"));

// ---------------------------------------------------------------------------
// Escape properties
// ---------------------------------------------------------------------------

TEST(XmlEscape, FastPathReturnsTheInputViewUntouched) {
  std::string scratch;
  const std::string_view clean = "no specials here 123 _-.";
  const auto out = x::escape_view(clean, scratch);
  EXPECT_EQ(out.data(), clean.data());  // identity, not a copy
  EXPECT_EQ(out, clean);

  const auto escaped = x::escape_view("a<b", scratch);
  EXPECT_EQ(escaped, "a&lt;b");
  EXPECT_EQ(escaped.data(), scratch.data());
}

TEST(XmlEscape, PropertyRoundTripsThroughParser) {
  // Random strings over an alphabet heavy in escapable bytes survive
  // write->parse exactly (attributes are exact; text is trimmed, so pad).
  std::mt19937 rng(20260807u);
  const std::string alphabet = "ab<>&\"' \t\n;#x0123&&&<<>>";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<std::size_t> len(0, 40);
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    const std::size_t n = len(rng);
    for (std::size_t i = 0; i < n; ++i) s += alphabet[pick(rng)];

    x::Document doc("r");
    doc.root().set_attr("v", s);
    doc.root().set_text("x" + s + "x");  // sentinels defeat trimming
    const std::string bytes = x::write(doc);

    const auto dom = x::parse(bytes);
    EXPECT_EQ(dom.root().attr_or("v", "!"), s) << "iter " << iter;
    EXPECT_EQ(dom.root().text(), "x" + s + "x") << "iter " << iter;

    const auto tree = x::Tree::parse(bytes);
    EXPECT_EQ(tree.root().attr_or("v", "!"), s) << "iter " << iter;
    EXPECT_EQ(tree.root().text(), "x" + s + "x") << "iter " << iter;
  }
}

TEST(XmlEscape, UnescapePropertyOverCharacterReferences) {
  // Numeric references for every escapable byte decode to the raw byte.
  const auto doc = x::parse("<r a=\"&#38;&#60;&#62;&#34;&#39;\"/>");
  EXPECT_EQ(doc.root().attr_or("a", ""), "&<>\"'");
}

TEST(XmlParser, CharacterReferenceBoundaries) {
  // Encoding-length boundaries of UTF-8.
  EXPECT_EQ(x::parse("<r>&#x7F;</r>").root().text(), "\x7F");
  EXPECT_EQ(x::parse("<r>&#x80;</r>").root().text(), "\xC2\x80");
  EXPECT_EQ(x::parse("<r>&#x7FF;</r>").root().text(), "\xDF\xBF");
  EXPECT_EQ(x::parse("<r>&#x800;</r>").root().text(), "\xE0\xA0\x80");
  EXPECT_EQ(x::parse("<r>&#xFFFF;</r>").root().text(), "\xEF\xBF\xBF");
  EXPECT_EQ(x::parse("<r>&#x10000;</r>").root().text(), "\xF0\x90\x80\x80");
  EXPECT_EQ(x::parse("<r>&#x10FFFF;</r>").root().text(), "\xF4\x8F\xBF\xBF");
  // Out of range or malformed.
  EXPECT_THROW((void)x::parse("<r>&#x110000;</r>"), x::ParseError);
  EXPECT_THROW((void)x::parse("<r>&#;</r>"), x::ParseError);
  EXPECT_THROW((void)x::parse("<r>&#x;</r>"), x::ParseError);
  EXPECT_THROW((void)x::parse("<r>&#12x;</r>"), x::ParseError);
  EXPECT_THROW((void)x::parse("<r>&#-1;</r>"), x::ParseError);
}

// ---------------------------------------------------------------------------
// Exact error offsets
// ---------------------------------------------------------------------------

struct OffsetCase {
  const char* label;
  const char* text;
  std::size_t offset;
};

class XmlParseErrorOffsets : public ::testing::TestWithParam<OffsetCase> {};

TEST_P(XmlParseErrorOffsets, OffsetPointsAtTheDefect) {
  const auto& p = GetParam();
  try {
    (void)x::parse(p.text);
    FAIL() << "expected ParseError for: " << p.text;
  } catch (const x::ParseError& e) {
    EXPECT_EQ(e.offset(), p.offset) << p.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exact, XmlParseErrorOffsets,
    ::testing::Values(
        OffsetCase{"empty_input", "", 0},
        OffsetCase{"mismatched_close_name", "<a></b>", 5},
        OffsetCase{"unclosed_root_at_eof", "<r>", 3},
        OffsetCase{"second_root", "<a/><b/>", 4},
        OffsetCase{"unknown_entity_at_amp", "<a>&nosuch;</a>", 3},
        OffsetCase{"lt_inside_attr_value", "<a b=\"<\"/>", 6},
        OffsetCase{"unquoted_attr_value", "<a b=x/>", 5},
        OffsetCase{"charref_out_of_range", "<a>&#1114112;</a>", 3},
        OffsetCase{"unterminated_cdata", "<a><![CDATA[x</a>", 17}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(XmlParseErrorOffsets, LineDerivedFromOffset) {
  try {
    (void)x::parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const x::ParseError& e) {
    EXPECT_EQ(e.offset(), 10u);  // the 'c' of the mismatched close tag
    EXPECT_EQ(e.line(), 3u);
  }
}
