// Tests for the simulation service: wire-protocol round trips and
// truncation tagging, the content-hash ModelCache (LRU eviction order under
// the byte ceiling, single-flight build-once, pooled-context byte-identity),
// the Engine request path (cold vs warm vs post-eviction digests equal to a
// direct in-process run, both backends, batch/lint/campaign parity), the
// TCP Server/Client loop, and the native .so build gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codegen/native.hpp"
#include "mapping/mapping.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/campaign.hpp"
#include "sim/compiled.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"

using namespace tut;

#define REQUIRE_COMPILER()                                  \
  do {                                                      \
    if (codegen::NativeImage::find_compiler().empty())      \
      GTEST_SKIP() << "no C++ compiler on this host";       \
  } while (0)

namespace {

constexpr sim::Time kHorizon = 2'000'000;  // 2 ms keeps runs ~50 events

/// One TUTMAC system + its serialized XML + declared workload. Distinct
/// c_slot values produce distinct model content (the cycle cost lives in
/// the behaviour), hence distinct cache keys of identical byte size.
struct Fixture {
  tutmac::System sys;
  std::string xml;
  std::vector<serve::WorkloadEntry> workload;

  explicit Fixture(long c_slot) : sys(build_system(c_slot)) {
    xml = uml::to_xml_string(*sys.model);
    workload.resize(3);
    const tutmac::Options& o = sys.options;
    workload[0] = {"pphy", sys.radio_slot->name(), "slotPeriod",
                   o.slot_period, 0, {}};
    workload[1] = {"pphy", sys.rx_frame->name(), "rxPeriod",
                   o.rx_period, 7'777, {256}};
    workload[2] = {"puser", sys.user_msdu->name(), "msduPeriod",
                   o.msdu_period, 3'333, {512}};
  }

  static tutmac::System build_system(long c_slot) {
    tutmac::Options opt;
    opt.horizon = kHorizon;
    opt.c_slot = c_slot;
    return tutmac::build(opt);
  }
};

const Fixture& fixture(long c_slot = 3900) {
  static std::map<long, std::unique_ptr<Fixture>> built;
  auto& slot = built[c_slot];
  if (!slot) slot = std::make_unique<Fixture>(c_slot);
  return *slot;
}

std::string simulate_payload(const Fixture& f, serve::BackendChoice backend,
                             bool want_log = false) {
  serve::SimulateRequest q;
  q.model_xml = f.xml;
  q.backend = backend;
  q.horizon = kHorizon;
  q.want_log = want_log;
  q.workload = f.workload;
  return q.encode();
}

serve::SimulateResponse simulate(serve::Engine& engine,
                                 const std::string& payload) {
  const std::string resp = engine.handle(payload);
  serve::wire::Reader r(serve::decode_response(resp));
  return serve::SimulateResponse::decode(r);
}

serve::StatsResponse engine_stats(serve::Engine& engine) {
  const std::string resp = engine.handle(serve::encode_stats_request());
  serve::wire::Reader r(serve::decode_response(resp));
  return serve::StatsResponse::decode(r);
}

/// The reference: a fresh single-shot run straight through the pipeline,
/// exactly what `tut sim tutmac` does.
std::uint64_t direct_digest(const Fixture& f, std::string* log_text = nullptr) {
  mapping::SystemView view(*f.sys.model);
  auto image = sim::CompiledModel::build(view);
  sim::Config cfg;
  cfg.horizon = kHorizon;
  sim::Simulation s(image, cfg);
  f.sys.inject_workload(s);
  s.run();
  if (log_text) *log_text = s.log().to_text();
  return sim::log_digest(s.log());
}

/// Engine-style injection: signals resolved by name on `model` — required
/// whenever the simulation runs over a cache entry's reparsed model, where
/// the fixture's original Signal objects are strangers.
void inject_workload_by_name(sim::Simulation& s, const uml::Model& model,
                             const std::vector<serve::WorkloadEntry>& w,
                             sim::Time horizon) {
  for (const auto& e : w) {
    const uml::Signal* sig = model.find_signal(e.signal);
    ASSERT_NE(sig, nullptr) << e.signal;
    const sim::Time first = e.period + e.first_offset;
    const std::size_t count =
        first >= horizon ? 0
                         : static_cast<std::size_t>((horizon - first) / e.period);
    std::vector<long> args(e.args.begin(), e.args.end());
    s.inject_periodic(first, e.period, count, e.port, *sig, std::move(args));
  }
}

std::string temp_dir(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "." + std::to_string(::getpid())))
      .string();
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(ServeProtocol, SimulateRequestRoundTrip) {
  serve::SimulateRequest q;
  q.model_xml = "<model/>";
  q.backend = serve::BackendChoice::Native;
  q.horizon = 123'456;
  q.has_seed = true;
  q.seed = 99;
  q.faults_xml = "<faults/>";
  q.want_log = true;
  q.workload = {{"pphy", "Sig", "slotPeriod", 1'000, 17, {256, -3}}};

  const std::string payload = q.encode();
  serve::wire::Reader r(payload);
  EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(serve::RequestKind::Simulate));
  const serve::SimulateRequest d = serve::SimulateRequest::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(d.model_xml, q.model_xml);
  EXPECT_EQ(d.backend, serve::BackendChoice::Native);
  EXPECT_EQ(d.horizon, q.horizon);
  EXPECT_TRUE(d.has_seed);
  EXPECT_EQ(d.seed, 99u);
  EXPECT_EQ(d.faults_xml, q.faults_xml);
  EXPECT_TRUE(d.want_log);
  ASSERT_EQ(d.workload.size(), 1u);
  EXPECT_EQ(d.workload[0].signal, "Sig");
  EXPECT_EQ(d.workload[0].first_offset, 17u);
  EXPECT_EQ(d.workload[0].args, (std::vector<std::int64_t>{256, -3}));
}

TEST(ServeProtocol, TruncatedPayloadTagged) {
  serve::SimulateRequest q;
  q.model_xml = "<model with enough bytes to truncate/>";
  const std::string payload = q.encode();
  serve::wire::Reader r(
      std::string_view(payload).substr(0, payload.size() - 5));
  r.u32();  // kind
  try {
    serve::SimulateRequest::decode(r);
    FAIL() << "expected ProtocolError";
  } catch (const serve::ProtocolError& e) {
    EXPECT_EQ(e.tag(), "serve.frame.truncated");
    EXPECT_NE(std::string(e.what()).find("[serve.frame.truncated]"),
              std::string::npos);
  }
}

TEST(ServeProtocol, ErrorEnvelopeRoundTrip) {
  const std::string resp =
      serve::error_response("serve.request.failed", "boom");
  try {
    serve::decode_response(resp);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[serve.request.failed] boom"),
              std::string::npos);
  }
}

TEST(ServeProtocol, AdminTextCarriesTags) {
  serve::StatsResponse s;
  EXPECT_NE(s.to_text().find("[serve.stats]"), std::string::npos);
  serve::EvictResponse ev;
  EXPECT_NE(ev.to_text().find("[serve.evict]"), std::string::npos);
  serve::ShutdownResponse sd;
  EXPECT_NE(sd.to_text().find("[serve.shutdown]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ModelCache
// ---------------------------------------------------------------------------

TEST(ModelCache, KeySeparatesContentBackendAndCaps) {
  const sim::ResourceProfile unb = sim::ResourceProfile::unbounded();
  serve::ModelCache cache(unb);
  const std::uint64_t a =
      cache.key_of(fixture(3900).xml, sim::Backend::Interpreter);
  EXPECT_NE(a, cache.key_of(fixture(3901).xml, sim::Backend::Interpreter));
  EXPECT_NE(a, cache.key_of(fixture(3900).xml, sim::Backend::Native));

  serve::ModelCache capped(sim::ResourceProfile::constrained());
  EXPECT_NE(a, capped.key_of(fixture(3900).xml, sim::Backend::Interpreter));
}

TEST(ModelCache, LruEvictionOrderUnderByteCeiling) {
  // Measure one entry's footprint, then cap the cache at 2.5 entries.
  sim::ResourceProfile profile = sim::ResourceProfile::unbounded();
  std::uint64_t entry_bytes = 0;
  {
    serve::ModelCache probe(profile);
    probe.acquire(fixture(3901).xml, sim::Backend::Interpreter);
    entry_bytes = probe.stats().bytes;
  }
  ASSERT_GT(entry_bytes, 0u);
  profile.cache_bytes = entry_bytes * 5 / 2;

  serve::ModelCache cache(profile);
  const auto& a = fixture(3901);
  const auto& b = fixture(3902);
  const auto& c = fixture(3903);

  EXPECT_FALSE(cache.acquire(a.xml, sim::Backend::Interpreter).warm);
  EXPECT_FALSE(cache.acquire(b.xml, sim::Backend::Interpreter).warm);
  // Touch A so B becomes the LRU entry, then push past the ceiling with C.
  EXPECT_TRUE(cache.acquire(a.xml, sim::Backend::Interpreter).warm);
  EXPECT_FALSE(cache.acquire(c.xml, sim::Backend::Interpreter).warm);

  serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_LE(st.bytes, st.capacity);

  // A survived (touched), B did not.
  EXPECT_TRUE(cache.acquire(a.xml, sim::Backend::Interpreter).warm);
  EXPECT_FALSE(cache.acquire(b.xml, sim::Backend::Interpreter).warm);

  st = cache.stats();
  EXPECT_GE(st.evictions, 2u);
  EXPECT_LE(st.bytes, st.capacity);
}

TEST(ModelCache, SingleFlightBuildsOnce) {
  serve::ModelCache cache(sim::ResourceProfile::unbounded());
  const auto& f = fixture();

  constexpr int kThreads = 6;
  std::vector<serve::ModelCache::Acquired> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&cache, &f, &got, i] {
      got[i] = cache.acquire(f.xml, sim::Backend::Interpreter);
    });
  for (auto& t : threads) t.join();

  int cold = 0;
  for (const auto& acq : got) {
    ASSERT_NE(acq.entry, nullptr);
    EXPECT_EQ(acq.entry, got[0].entry);  // one shared entry for all
    if (!acq.warm) ++cold;
  }
  EXPECT_EQ(cold, 1);

  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.builds, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ModelCache, PooledContextRunsByteIdentical) {
  serve::ModelCache cache(sim::ResourceProfile::unbounded());
  const auto& f = fixture();
  const auto acq = cache.acquire(f.xml, sim::Backend::Interpreter);

  sim::Config cfg;
  cfg.horizon = kHorizon;

  auto run_once = [&] {
    auto s = cache.acquire_context(acq.entry, cfg);
    inject_workload_by_name(*s, *acq.entry->model, f.workload, kHorizon);
    s->run();
    const std::uint64_t digest = sim::log_digest(s->log());
    cache.release_context(acq.entry, std::move(s));
    return digest;
  };

  const std::uint64_t fresh = run_once();
  EXPECT_EQ(cache.stats().contexts, 1u);  // pooled on release
  const std::uint64_t pooled = run_once();  // pops + resets the same context
  EXPECT_EQ(fresh, pooled);
  EXPECT_EQ(fresh, direct_digest(f));
}

// ---------------------------------------------------------------------------
// Engine request path
// ---------------------------------------------------------------------------

TEST(ServeEngine, UnknownRequestKindTagged) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  std::string payload;
  serve::wire::put_u32(payload, 99);
  try {
    serve::decode_response(engine.handle(payload));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[serve.request.unknown]"),
              std::string::npos);
  }
}

TEST(ServeEngine, MalformedPayloadTagged) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  std::string payload;
  serve::wire::put_u32(
      payload, static_cast<std::uint32_t>(serve::RequestKind::Simulate));
  payload += "xx";  // short body
  try {
    serve::decode_response(engine.handle(payload));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[serve.frame.truncated]"),
              std::string::npos);
  }
}

TEST(ServeEngine, ColdWarmAndPostEvictionDigestsIdentical) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  const auto& f = fixture();
  const std::string payload =
      simulate_payload(f, serve::BackendChoice::Interpreter, true);

  std::string reference_log;
  const std::uint64_t reference = direct_digest(f, &reference_log);

  const serve::SimulateResponse cold = simulate(engine, payload);
  EXPECT_FALSE(cold.warm);
  EXPECT_EQ(cold.backend_name, "interpreter");
  EXPECT_EQ(cold.digest, reference);
  EXPECT_EQ(cold.log_text, reference_log);
  EXPECT_GT(cold.events, 0u);

  const serve::SimulateResponse warm = simulate(engine, payload);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.digest, reference);
  EXPECT_EQ(warm.log_text, reference_log);
  EXPECT_EQ(warm.events, cold.events);
  EXPECT_EQ(warm.records, cold.records);
  EXPECT_EQ(warm.end_time, cold.end_time);

  // Evict through the request path, then rebuild: still byte-identical.
  serve::EvictRequest ev;
  ev.all = true;
  const std::string ev_resp = engine.handle(ev.encode());
  serve::wire::Reader evr(serve::decode_response(ev_resp));
  const serve::EvictResponse evicted = serve::EvictResponse::decode(evr);
  EXPECT_EQ(evicted.evicted, 1u);
  EXPECT_GT(evicted.bytes_freed, 0u);

  const serve::SimulateResponse rebuilt = simulate(engine, payload);
  EXPECT_FALSE(rebuilt.warm);
  EXPECT_EQ(rebuilt.digest, reference);
  EXPECT_EQ(rebuilt.log_text, reference_log);

  const serve::StatsResponse st = engine_stats(engine);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.builds, 2u);  // cold + post-eviction rebuild
  EXPECT_EQ(st.misses, 2u);
  EXPECT_GE(st.hits, 1u);
}

TEST(ServeEngine, NativeBackendMatchesInterpreter) {
  REQUIRE_COMPILER();
  serve::Engine engine(sim::ResourceProfile::unbounded());
  const auto& f = fixture();

  const serve::SimulateResponse interp = simulate(
      engine, simulate_payload(f, serve::BackendChoice::Interpreter, true));
  const serve::SimulateResponse native_cold = simulate(
      engine, simulate_payload(f, serve::BackendChoice::Native, true));
  EXPECT_FALSE(native_cold.warm);
  EXPECT_EQ(native_cold.backend_name, "native");
  EXPECT_NE(native_cold.image_hash, 0u);
  EXPECT_EQ(native_cold.digest, interp.digest);
  EXPECT_EQ(native_cold.log_text, interp.log_text);

  const serve::SimulateResponse native_warm = simulate(
      engine, simulate_payload(f, serve::BackendChoice::Native, true));
  EXPECT_TRUE(native_warm.warm);
  EXPECT_EQ(native_warm.image_hash, native_cold.image_hash);
  EXPECT_EQ(native_warm.digest, interp.digest);

  // Interpreter and native occupy distinct cache entries.
  EXPECT_EQ(engine.cache().stats().entries, 2u);
}

TEST(ServeEngine, BatchWarmRowsMatchCold) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  const auto& f = fixture();

  serve::BatchRequest q;
  q.model_xml = f.xml;
  q.horizon = kHorizon;
  q.seed = 7;
  q.count = 3;
  q.threads = 1;
  q.workload = f.workload;
  const std::string payload = q.encode();

  auto run = [&] {
    const std::string resp = engine.handle(payload);
    serve::wire::Reader r(serve::decode_response(resp));
    return serve::BatchResponse::decode(r);
  };
  const serve::BatchResponse cold = run();
  EXPECT_FALSE(cold.warm);
  ASSERT_EQ(cold.rows.size(), 3u);
  EXPECT_EQ(cold.rows[0].seed, 7u);
  for (const auto& row : cold.rows) {
    EXPECT_TRUE(row.error.empty());
    EXPECT_NE(row.hash, 0u);
  }

  const serve::BatchResponse warm = run();
  EXPECT_TRUE(warm.warm);
  ASSERT_EQ(warm.rows.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(warm.rows[i].seed, cold.rows[i].seed);
    EXPECT_EQ(warm.rows[i].hash, cold.rows[i].hash);
    EXPECT_EQ(warm.rows[i].events, cold.rows[i].events);
  }
}

TEST(ServeEngine, LintReportCachedWithModel) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  serve::LintRequest q;
  q.model_xml = fixture().xml;
  const std::string payload = q.encode();

  auto run = [&] {
    const std::string resp = engine.handle(payload);
    serve::wire::Reader r(serve::decode_response(resp));
    return serve::LintResponse::decode(r);
  };
  const serve::LintResponse cold = run();
  EXPECT_FALSE(cold.warm);
  EXPECT_FALSE(cold.text.empty());

  const serve::LintResponse warm = run();
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.ok, cold.ok);
  EXPECT_EQ(warm.text, cold.text);

  // Lint shares the simulate entry: still one interpreter cache entry.
  EXPECT_EQ(engine.cache().stats().entries, 1u);
}

TEST(ServeEngine, CampaignMatchesLocalRunner) {
  const auto& f = fixture();
  const std::string campaign_xml = R"(<?xml version="1.0"?>
<tut:campaign name="serve-parity" seed="5" horizon="2000000">
  <axis name="seed" count="3"/>
  <axis name="slotPeriod" values="50000 100000"/>
</tut:campaign>)";

  // Reference: the local CampaignRunner over the same compiled image.
  const sim::CampaignSpec spec = sim::CampaignSpec::from_xml_text(campaign_xml);
  mapping::SystemView view(*f.sys.model);
  auto image = sim::CompiledModel::build(view);
  auto setup = [&f](sim::Simulation& s, const sim::Scenario& sc) {
    tutmac::Options o = f.sys.options;
    o.horizon = s.config().horizon;
    o.slot_period = static_cast<sim::Time>(
        sc.param("slotPeriod", static_cast<long>(o.slot_period)));
    o.rx_period = static_cast<sim::Time>(
        sc.param("rxPeriod", static_cast<long>(o.rx_period)));
    o.msdu_period = static_cast<sim::Time>(
        sc.param("msduPeriod", static_cast<long>(o.msdu_period)));
    f.sys.inject_workload(s, o);
  };
  sim::CampaignOptions local_opt;
  local_opt.threads = 1;
  const sim::CampaignResult local =
      sim::CampaignRunner({image}, setup).run(spec, local_opt);

  serve::Engine engine(sim::ResourceProfile::unbounded());
  serve::CampaignRequest q;
  q.campaign_xml = campaign_xml;
  q.threads = 1;
  q.images = {{"paper", f.xml}};
  q.workload = f.workload;
  const std::string cold_resp = engine.handle(q.encode());
  serve::wire::Reader r(serve::decode_response(cold_resp));
  const serve::CampaignResponse served = serve::CampaignResponse::decode(r);

  EXPECT_TRUE(served.completed);
  EXPECT_EQ(served.scenarios, spec.total());
  EXPECT_EQ(served.digest, local.aggregate.digest);
  EXPECT_EQ(served.warm_images, 0u);

  // Second run over the now-warm image: same digest, warm hit counted.
  const std::string warm_resp = engine.handle(q.encode());
  serve::wire::Reader r2(serve::decode_response(warm_resp));
  const serve::CampaignResponse warm = serve::CampaignResponse::decode(r2);
  EXPECT_EQ(warm.warm_images, 1u);
  EXPECT_EQ(warm.digest, local.aggregate.digest);
}

// ---------------------------------------------------------------------------
// Server / Client transport
// ---------------------------------------------------------------------------

TEST(ServeServer, ClientRoundTripAndShutdown) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  serve::Server server(engine, 0, 2);
  ASSERT_NE(server.port(), 0);
  std::thread runner([&server] { server.run(); });

  const auto& f = fixture();
  const std::uint64_t reference = direct_digest(f);
  {
    serve::Client client("127.0.0.1", server.port());
    const std::string body =
        client.call(simulate_payload(f, serve::BackendChoice::Interpreter));
    serve::wire::Reader r(body);
    const serve::SimulateResponse p = serve::SimulateResponse::decode(r);
    EXPECT_FALSE(p.warm);
    EXPECT_EQ(p.digest, reference);

    const std::string stats_body = client.call(serve::encode_stats_request());
    serve::wire::Reader sr(stats_body);
    const serve::StatsResponse st = serve::StatsResponse::decode(sr);
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.builds, 1u);
  }
  {
    // A second connection sees the warm cache, then shuts the daemon down.
    serve::Client client("127.0.0.1", server.port());
    const std::string warm_body =
        client.call(simulate_payload(f, serve::BackendChoice::Interpreter));
    serve::wire::Reader r(warm_body);
    EXPECT_TRUE(serve::SimulateResponse::decode(r).warm);

    const std::string bye_body = client.call(serve::encode_shutdown_request());
    serve::wire::Reader sd(bye_body);
    EXPECT_EQ(serve::ShutdownResponse::decode(sd).entries_dropped, 1u);
  }
  runner.join();  // shutdown request stopped the accept loop
  EXPECT_EQ(engine.cache().stats().entries, 0u);
}

TEST(ServeServer, ServerSideErrorReachesClientTagged) {
  serve::Engine engine(sim::ResourceProfile::unbounded());
  serve::Server server(engine, 0, 1);
  std::thread runner([&server] { server.run(); });
  {
    serve::Client client("127.0.0.1", server.port());
    std::string payload;
    serve::wire::put_u32(payload, 99);
    try {
      client.call(payload);
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("[serve.request.unknown]"),
                std::string::npos);
    }
  }
  server.stop();
  runner.join();
}

// ---------------------------------------------------------------------------
// Native .so build gate (codegen single-flight)
// ---------------------------------------------------------------------------

TEST(NativeBuildGate, ConcurrentBuildsCompileOnce) {
  REQUIRE_COMPILER();
  const auto& f = fixture();
  mapping::SystemView view(*f.sys.model);
  auto model = sim::CompiledModel::build(view);

  // A fresh cache dir: the .so cannot pre-exist, so exactly one of the
  // concurrent builds may compile; the gate serializes the rest onto the
  // cached object.
  codegen::NativeOptions opt;
  opt.cache_dir = temp_dir("tut-serve-gate");
  std::filesystem::remove_all(opt.cache_dir);

  constexpr int kThreads = 3;
  std::vector<std::shared_ptr<const codegen::NativeImage>> images(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&model, &opt, &images, i] {
      images[i] = codegen::NativeImage::build(model, opt);
    });
  for (auto& t : threads) t.join();

  int compiled = 0;
  for (const auto& img : images) {
    ASSERT_NE(img, nullptr);
    EXPECT_EQ(img->content_hash(), images[0]->content_hash());
    if (!img->cache_hit()) ++compiled;
  }
  EXPECT_EQ(compiled, 1);

  std::filesystem::remove_all(opt.cache_dir);
}
