// Tests for analysis::absint — the interval domain, abstract program
// evaluation, the per-machine fixpoint, the proof-backed lint rules layered
// on it, and the Facts table the native backend consumes. Rule tests follow
// the house pattern: one positive mutation of the MiniSystem fixture plus
// the unmodified fixture as the clean negative.
#include <gtest/gtest.h>

#include <climits>
#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/analyzer.hpp"
#include "efsm/machine.hpp"
#include "efsm/program.hpp"
#include "fixtures.hpp"

using namespace tut;
using namespace tut::analysis::absint;

namespace {

bool has_rule(const analysis::Report& r, std::string_view rule,
              std::string_view element_substr = {}) {
  for (const analysis::Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule &&
        (element_substr.empty() ||
         d.element.find(element_substr) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

const analysis::Report& clean_report() {
  static const analysis::Report report = [] {
    test::MiniSystem sys;
    return analysis::analyze(sys.model);
  }();
  return report;
}

efsm::Program compile(const std::string& text,
                      const efsm::Program::SlotMap& slots = {}) {
  return efsm::Program::compile(efsm::Expr::compile(text), slots);
}

SlotState defined(Interval iv) { return SlotState{iv, false}; }

}  // namespace

// ---------------------------------------------------------------------------
// Interval lattice
// ---------------------------------------------------------------------------

TEST(AbsintInterval, LatticeBasics) {
  EXPECT_EQ(join(Interval::empty(), Interval::range(1, 2)),
            Interval::range(1, 2));
  EXPECT_EQ(join(Interval::range(1, 2), Interval::range(4, 5)),
            Interval::range(1, 5));
  EXPECT_EQ(meet(Interval::range(1, 5), Interval::range(3, 8)),
            Interval::range(3, 5));
  EXPECT_TRUE(meet(Interval::range(1, 2), Interval::range(4, 5)).is_empty());
  EXPECT_TRUE(meet(Interval::empty(), Interval::top()).is_empty());
  EXPECT_TRUE(Interval::constant(7).is_constant());
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_FALSE(Interval::top().is_finite());
  EXPECT_TRUE(Interval::range(-3, 9).is_finite());
}

TEST(AbsintInterval, WideningJumpsMovedBoundsToSentinels) {
  EXPECT_EQ(widen(Interval::range(0, 1), Interval::range(0, 2)),
            Interval::range(0, Interval::kMax));
  EXPECT_EQ(widen(Interval::range(0, 5), Interval::range(-1, 5)),
            Interval::range(Interval::kMin, 5));
  // A stable interval widens to itself.
  EXPECT_EQ(widen(Interval::range(2, 4), Interval::range(2, 4)),
            Interval::range(2, 4));
}

TEST(AbsintInterval, ExcludeZeroTrimsBoundariesOnly) {
  EXPECT_EQ(exclude_zero(Interval::range(0, 5)), Interval::range(1, 5));
  EXPECT_EQ(exclude_zero(Interval::range(-5, 0)), Interval::range(-5, -1));
  EXPECT_TRUE(exclude_zero(Interval::constant(0)).is_empty());
  // An interior zero cannot be removed from one interval.
  EXPECT_EQ(exclude_zero(Interval::range(-5, 5)), Interval::range(-5, 5));
}

// ---------------------------------------------------------------------------
// Abstract arithmetic
// ---------------------------------------------------------------------------

TEST(AbsintArith, AddSubMulRanges) {
  EXPECT_EQ(abs_add(Interval::range(1, 2), Interval::range(10, 20)),
            Interval::range(11, 22));
  EXPECT_EQ(abs_sub(Interval::range(1, 2), Interval::range(10, 20)),
            Interval::range(-19, -8));
  EXPECT_EQ(abs_mul(Interval::range(-2, 3), Interval::range(4, 5)),
            Interval::range(-10, 15));
  EXPECT_EQ(abs_neg(Interval::range(-2, 3)), Interval::range(-3, 2));
}

TEST(AbsintArith, OverflowFlagOnlyForFiniteOperands) {
  bool ovf = false;
  const long big = LONG_MAX - 1;
  const Interval r = abs_add(Interval::constant(big), Interval::constant(2),
                             &ovf);
  EXPECT_TRUE(ovf);
  EXPECT_EQ(r.hi, Interval::kMax);  // saturated

  // Widened (infinite) bounds lose precision but are not an overflow proof.
  ovf = false;
  abs_add(Interval::range(0, Interval::kMax), Interval::constant(1), &ovf);
  EXPECT_FALSE(ovf);
}

TEST(AbsintArith, DivSplitsDivisorAroundZero) {
  EXPECT_EQ(abs_div(Interval::constant(10), Interval::range(1, 5)),
            Interval::range(2, 10));
  EXPECT_EQ(abs_div(Interval::constant(10), Interval::range(-3, -1)),
            Interval::range(-10, -3));
  // Divisor spanning zero: both signed parts contribute.
  const Interval r = abs_div(Interval::constant(10), Interval::range(-2, 2));
  EXPECT_LE(r.lo, -10);
  EXPECT_GE(r.hi, 10);
  EXPECT_TRUE(abs_div(Interval::constant(10), Interval::constant(0))
                  .is_empty());
}

TEST(AbsintArith, ModBounds) {
  EXPECT_EQ(abs_mod(Interval::range(0, 7), Interval::constant(8)),
            Interval::range(0, 7));  // exact pass-through
  EXPECT_EQ(abs_mod(Interval::range(0, 100), Interval::constant(8)),
            Interval::range(0, 7));
  EXPECT_EQ(abs_mod(Interval::range(-5, 5), Interval::constant(3)),
            Interval::range(-2, 2));  // sign follows the dividend
}

// ---------------------------------------------------------------------------
// Abstract program evaluation
// ---------------------------------------------------------------------------

TEST(AbsintEval, ConstantExpressionIsTotal) {
  const ProgramFacts f = eval_program(compile("1 + 2 * 3"), {});
  EXPECT_TRUE(f.completes);
  EXPECT_TRUE(f.total);
  EXPECT_EQ(f.result, Interval::constant(7));
  EXPECT_TRUE(f.proven_true());
}

TEST(AbsintEval, SlotRangesFlowThroughArithmetic) {
  Env env(1);
  env[0] = defined(Interval::range(0, 10));
  const ProgramFacts f = eval_program(compile("n * 2 + 1", {{"n", 0}}), env);
  EXPECT_TRUE(f.total);
  EXPECT_EQ(f.result, Interval::range(1, 21));
}

TEST(AbsintEval, ProvenNonzeroDivisorIsSafe) {
  Env env(1);
  env[0] = defined(Interval::range(1, 5));
  const ProgramFacts f = eval_program(compile("10 / n", {{"n", 0}}), env);
  EXPECT_TRUE(f.total);
  EXPECT_TRUE(f.divzero.empty());
  ASSERT_EQ(f.safe_checks.size(), 1u);
  EXPECT_EQ(f.result, Interval::range(2, 10));
}

TEST(AbsintEval, DivisorContainingZeroIsFlaggedAndRefined) {
  Env env(1);
  env[0] = defined(Interval::range(0, 5));
  const ProgramFacts f = eval_program(compile("10 / n", {{"n", 0}}), env);
  EXPECT_TRUE(f.completes);
  EXPECT_FALSE(f.total);  // the throwing path exists
  ASSERT_EQ(f.divzero.size(), 1u);
  // Past the check the divisor is refined to exclude zero.
  EXPECT_EQ(f.result, Interval::range(2, 10));
}

TEST(AbsintEval, MissingIdentifierNeverCompletes) {
  const ProgramFacts f = eval_program(compile("ghost + 1"), {});
  EXPECT_FALSE(f.completes);
  EXPECT_FALSE(f.total);
  EXPECT_FALSE(f.proven_true());
  EXPECT_FALSE(f.proven_false());
}

TEST(AbsintEval, MaybeUndefinedSlotReadIsNotTotal) {
  Env env(1);
  env[0] = SlotState{Interval::range(1, 2), /*maybe_undef=*/true};
  const ProgramFacts f = eval_program(compile("n", {{"n", 0}}), env);
  EXPECT_TRUE(f.completes);
  EXPECT_FALSE(f.total);
}

TEST(AbsintEval, ShortCircuitRefinesBranches) {
  // n in [0,5]: "n != 0 && 10 / n > 0" — the division only executes on the
  // n != 0 branch, so the check is safe even though the range contains 0.
  Env env(1);
  env[0] = defined(Interval::range(0, 5));
  const ProgramFacts f =
      eval_program(compile("n != 0 && 10 / n > 0", {{"n", 0}}), env);
  EXPECT_TRUE(f.total) << "refinement must remove the zero";
  EXPECT_TRUE(f.divzero.empty());
  ASSERT_EQ(f.safe_checks.size(), 1u);
}

TEST(AbsintEval, ComparisonVerdictsNeedUsableBounds) {
  Env env(1);
  env[0] = defined(Interval::range(0, 100));
  EXPECT_TRUE(eval_program(compile("n < 0", {{"n", 0}}), env).proven_false());
  EXPECT_TRUE(eval_program(compile("n >= 0", {{"n", 0}}), env).proven_true());
  // With a widened (sentinel) bound the comparison may not fold.
  env[0] = defined(Interval::range(0, Interval::kMax));
  const ProgramFacts f = eval_program(compile("n < 0", {{"n", 0}}), env);
  EXPECT_TRUE(f.proven_false());  // lo bound 0 is usable either way
  const ProgramFacts g =
      eval_program(compile("n > 100", {{"n", 0}}), env);
  EXPECT_FALSE(g.proven_true());
  EXPECT_FALSE(g.proven_false());
}

// ---------------------------------------------------------------------------
// Whole-machine fixpoint
// ---------------------------------------------------------------------------

TEST(AbsintMachine, DspCounterWidensToHalfLine) {
  test::MiniSystem sys;
  const efsm::CompiledMachine cm(*sys.dsp_comp->behavior());
  const MachineSummary s = analyze(cm);
  ASSERT_TRUE(s.analyzed);
  ASSERT_EQ(s.reachable.size(), 1u);
  EXPECT_TRUE(s.reachable[0]);
  // n starts at 0 and only ever increments: the invariant is [0, +inf].
  const std::string text = invariants_text(cm, s);
  EXPECT_NE(text.find("value ranges"), std::string::npos) << text;
  EXPECT_NE(text.find("n in [0, +inf]"), std::string::npos) << text;
}

TEST(AbsintMachine, ControllerStatesAreReachableAndFeasible) {
  test::MiniSystem sys;
  const efsm::CompiledMachine cm(*sys.ctrl_comp->behavior());
  const MachineSummary s = analyze(cm);
  ASSERT_TRUE(s.analyzed);
  for (const bool r : s.reachable) EXPECT_TRUE(r);
  for (const auto& state : s.feasible) {
    for (const bool t : state) EXPECT_TRUE(t);
  }
}

TEST(AbsintMachine, RangeFalseGuardMakesTargetUnreachable) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  auto& cold = sys.model.add_state(dsm, "ColdPath");
  sys.model.add_transition(dsm, idle, cold, *sys.rsp, "in")
      .set_guard("n < 0");
  const efsm::CompiledMachine cm(dsm);
  const MachineSummary s = analyze(cm);
  ASSERT_TRUE(s.analyzed);
  ASSERT_EQ(s.reachable.size(), 2u);
  EXPECT_TRUE(s.reachable[0]);
  EXPECT_FALSE(s.reachable[1]) << "guard n < 0 can never be satisfied";
  const std::string text = invariants_text(cm, s);
  EXPECT_NE(text.find("unreachable"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Facts for the native backend
// ---------------------------------------------------------------------------

TEST(AbsintFacts, ProvenGuardsFoldAndSafeChecksElide) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  dsm.declare_variable("m", 5);
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .set_guard("n >= 0")
      .add_effect(uml::Action::compute("100 / m"));
  const efsm::CompiledMachine cm(dsm);
  const MachineSummary s = analyze(cm);
  ASSERT_TRUE(s.analyzed);
  const analysis::Facts facts = analysis::make_facts(cm, s);
  // The n >= 0 guard is proven true; the 100 / m check (m constant 5) is
  // elidable.
  bool guard_true = false;
  for (const auto& [prog, value] : facts.guard_const) {
    (void)prog;
    if (value == 1) guard_true = true;
  }
  EXPECT_TRUE(guard_true);
  EXPECT_FALSE(facts.elidable_checks.empty());
}

TEST(AbsintFacts, CleanMachineYieldsNoGuardFolds) {
  test::MiniSystem sys;
  const efsm::CompiledMachine cm(*sys.ctrl_comp->behavior());
  const analysis::Facts facts = analysis::make_facts(cm, analyze(cm));
  EXPECT_TRUE(facts.guard_const.empty());
}

// ---------------------------------------------------------------------------
// Proof-backed rules (positive + clean negative off MiniSystem)
// ---------------------------------------------------------------------------

TEST(AbsintRules, GuardDeadUnderDerivedRangesOnly) {
  // The flagship case const-folding provably cannot catch: n is a variable
  // (not a constant expression), dead only because the derived range says
  // n >= 0 forever.
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .set_guard("n < 0");
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.guard.dead.range")) << r.to_text();
  EXPECT_FALSE(has_rule(r, "efsm.guard.false"))
      << "const folding must not be able to catch this";
  EXPECT_FALSE(has_rule(clean_report(), "efsm.guard.dead.range"));
}

TEST(AbsintRules, GuardTautologyUnderRanges) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .set_guard("n >= 0");
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.guard.tautology.range")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.guard.tautology.range"));
}

TEST(AbsintRules, DivisorRangeContainingZero) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .add_effect(uml::Action::compute("100 / n"));
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.expr.divzero.possible")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.expr.divzero.possible"));
}

TEST(AbsintRules, ProvenNonzeroDivisorStaysQuiet) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  dsm.declare_variable("m", 5);
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .add_effect(uml::Action::compute("100 / m"));
  const auto r = analysis::analyze(sys.model);
  EXPECT_FALSE(has_rule(r, "efsm.expr.divzero.possible")) << r.to_text();
}

TEST(AbsintRules, FiniteOverflowIsFlagged) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  dsm.declare_variable("big", 2305843009213693952L);  // 2^61
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .add_effect(uml::Action::compute("big * 16"));
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.var.overflow.possible")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.var.overflow.possible"));
}

TEST(AbsintRules, NonpositiveTimerDelay) {
  test::MiniSystem sys;
  auto& csm = *sys.ctrl_comp->behavior();
  auto& idle = *csm.states()[0];
  auto& tx = *csm.states()[1];
  sys.model.add_transition(csm, idle, tx, *sys.rsp, "out")
      .add_effect(uml::Action::set_timer("bad", "5 - 10"));
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.timer.nonpositive")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.timer.nonpositive"));
}

TEST(AbsintRules, RangeRefinedUnreachableState) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  auto& cold = sys.model.add_state(dsm, "ColdPath");
  sys.model.add_transition(dsm, idle, cold, *sys.rsp, "in")
      .set_guard("n < 0");
  const auto r = analysis::analyze(sys.model);
  // Graph-reachable, range-unreachable: only the absint refinement fires.
  EXPECT_TRUE(has_rule(r, "efsm.state.unreachable", "ColdPath"))
      << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.state.unreachable"));
}

TEST(AbsintRules, RangeProvenTrueGuardShadowsLaterTransition) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  // Guard reads a slot, so the syntactic shadow rule cannot see it; the
  // range proof can.
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .set_guard("n >= 0");
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in");
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.transition.dead")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.transition.dead"));
}

TEST(AbsintRules, DisabledByOption) {
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .set_guard("n < 0");
  analysis::Options options;
  options.absint = false;
  const auto r = analysis::analyze(sys.model, options);
  EXPECT_FALSE(has_rule(r, "efsm.guard.dead.range")) << r.to_text();
}
