// Tests for the EFSM runtime: expression language, instance execution and
// composite-structure signal routing.
#include <gtest/gtest.h>

#include "efsm/expr.hpp"
#include "efsm/machine.hpp"
#include "efsm/router.hpp"
#include "uml/model.hpp"

using namespace tut;
using namespace tut::efsm;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct ExprCase {
  const char* label;
  const char* text;
  long expected;
};

class ExprEval : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprEval, Evaluates) {
  const Env env{{"a", 7}, {"b", 3}, {"len", 12}, {"x", 0}, {"_u2", 5}};
  EXPECT_EQ(Expr::compile(GetParam().text).eval(env), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExprEval,
    ::testing::Values(
        ExprCase{"literal", "42", 42},
        ExprCase{"variable", "a", 7},
        ExprCase{"underscore_ident", "_u2", 5},
        ExprCase{"add_sub", "a + b - 2", 8},
        ExprCase{"mul_precedence", "2 + 3 * 4", 14},
        ExprCase{"parens", "(2 + 3) * 4", 20},
        ExprCase{"div_mod", "a / b + a % b", 3},
        ExprCase{"unary_minus", "-a + 10", 3},
        ExprCase{"double_negation", "--a", 7},
        ExprCase{"not_zero", "!x", 1},
        ExprCase{"not_nonzero", "!a", 0},
        ExprCase{"eq", "a == 7", 1},
        ExprCase{"ne", "a != 7", 0},
        ExprCase{"lt", "b < a", 1},
        ExprCase{"le_boundary", "a <= 7", 1},
        ExprCase{"gt", "a > 7", 0},
        ExprCase{"ge", "a >= 8", 0},
        ExprCase{"and_true", "a > 0 && b > 0", 1},
        ExprCase{"and_false", "a > 0 && x > 0", 0},
        ExprCase{"or_shortcircuit", "a > 0 || 1 / x", 1},
        ExprCase{"and_shortcircuit", "x > 0 && 1 / x", 0},
        ExprCase{"ternary_true", "a > b ? 100 : 200", 100},
        ExprCase{"ternary_false", "a < b ? 100 : 200", 200},
        ExprCase{"nested_ternary", "x ? 1 : a ? 2 : 3", 2},
        ExprCase{"mixed", "400 * len + 2", 4802},
        ExprCase{"cmp_precedence", "1 + 2 == 3", 1},
        ExprCase{"whitespace", "  a+ b *2 ", 13}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(Expr, SyntaxErrors) {
  EXPECT_THROW((void)Expr::compile(""), ExprError);
  EXPECT_THROW((void)Expr::compile("1 +"), ExprError);
  EXPECT_THROW((void)Expr::compile("(1"), ExprError);
  EXPECT_THROW((void)Expr::compile("1 2"), ExprError);
  EXPECT_THROW((void)Expr::compile("a ? 1"), ExprError);
  EXPECT_THROW((void)Expr::compile("$bad"), ExprError);
}

TEST(Expr, EvalErrors) {
  const Env env{{"a", 1}};
  EXPECT_THROW((void)Expr::compile("nosuch").eval(env), EvalError);
  EXPECT_THROW((void)Expr::compile("1 / (a - 1)").eval(env), EvalError);
  EXPECT_THROW((void)Expr::compile("1 % (a - 1)").eval(env), EvalError);
}

TEST(Expr, Identifiers) {
  const auto ids = Expr::compile("a + b * a - foo").identifiers();
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b", "foo"}));
  EXPECT_TRUE(Expr::compile("1 + 2").identifiers().empty());
}

TEST(Expr, CacheReturnsSameObject) {
  ExprCache cache;
  const Expr& e1 = cache.get("a + 1");
  const Expr& e2 = cache.get("a + 1");
  EXPECT_EQ(&e1, &e2);
  const Expr& e3 = cache.get("a + 2");
  EXPECT_NE(&e1, &e3);
}

// ---------------------------------------------------------------------------
// Instance execution
// ---------------------------------------------------------------------------

namespace {

/// A small counter machine:
///   Idle --Inc(in)--> Idle             [assign n += step; compute 10]
///   Idle --Get(in) [n >= 3]--> Report  (entry: send out Result(n))
///   Report --(completion)--> Idle      [assign n = 0]
struct CounterModel {
  uml::Model model{"counter"};
  uml::Signal* inc;
  uml::Signal* get;
  uml::Signal* result;
  uml::Class* cls;
  uml::StateMachine* sm;

  CounterModel() {
    inc = &model.create_signal("Inc");
    inc->add_parameter("step", "int");
    get = &model.create_signal("Get");
    result = &model.create_signal("Result");
    result->add_parameter("value", "int");

    cls = &model.create_class("Counter", nullptr, true);
    model.add_port(*cls, "in").provide(*inc).provide(*get);
    model.add_port(*cls, "out").require(*result);

    sm = &model.create_behavior(*cls);
    sm->declare_variable("n", 0);
    auto& idle = model.add_state(*sm, "Idle", true);
    auto& report = model.add_state(*sm, "Report");
    report.on_entry(uml::Action::send("out", *result, {"n"}));

    model.add_transition(*sm, idle, idle, *inc, "in")
        .add_effect(uml::Action::assign("n", "n + step"))
        .add_effect(uml::Action::compute("10"));
    model.add_transition(*sm, idle, report, *get, "in").set_guard("n >= 3");
    model.add_transition(*sm, report, idle)
        .add_effect(uml::Action::assign("n", "0"));
  }
};

}  // namespace

TEST(Machine, StartEntersInitialState) {
  CounterModel m;
  Instance inst(*m.sm, "c");
  EXPECT_FALSE(inst.started());
  const auto r = inst.start();
  EXPECT_TRUE(inst.started());
  EXPECT_EQ(inst.state()->name(), "Idle");
  EXPECT_EQ(r.compute_cycles, 0);
  EXPECT_EQ(inst.variable("n"), 0);
}

TEST(Machine, DeliverBeforeStartThrows) {
  CounterModel m;
  Instance inst(*m.sm, "c");
  EXPECT_THROW((void)inst.deliver({m.inc, "in", {1}}), std::logic_error);
}

TEST(Machine, SignalTriggerWithParametersAndCompute) {
  CounterModel m;
  Instance inst(*m.sm, "c");
  inst.start();
  const auto r = inst.deliver({m.inc, "in", {5}});
  EXPECT_TRUE(r.fired);
  EXPECT_EQ(r.compute_cycles, 10);
  EXPECT_EQ(inst.variable("n"), 5);
  EXPECT_TRUE(r.sends.empty());
}

TEST(Machine, MissingArgsDefaultToZero) {
  CounterModel m;
  Instance inst(*m.sm, "c");
  inst.start();
  const auto r = inst.deliver({m.inc, "in", {}});
  EXPECT_TRUE(r.fired);
  EXPECT_EQ(inst.variable("n"), 0);
}

TEST(Machine, GuardBlocksUntilSatisfied) {
  CounterModel m;
  Instance inst(*m.sm, "c");
  inst.start();
  // n == 0: Get is discarded (guard false).
  auto r = inst.deliver({m.get, "in", {}});
  EXPECT_FALSE(r.fired);
  EXPECT_EQ(inst.state()->name(), "Idle");

  inst.deliver({m.inc, "in", {3}});
  r = inst.deliver({m.get, "in", {}});
  EXPECT_TRUE(r.fired);
  // Entry action of Report sent Result(n=3); completion reset n and
  // returned to Idle within the same step.
  ASSERT_EQ(r.sends.size(), 1u);
  EXPECT_EQ(r.sends[0].signal, m.result);
  EXPECT_EQ(r.sends[0].port, "out");
  ASSERT_EQ(r.sends[0].args.size(), 1u);
  EXPECT_EQ(r.sends[0].args[0], 3);
  EXPECT_EQ(inst.state()->name(), "Idle");
  EXPECT_EQ(inst.variable("n"), 0);
  EXPECT_EQ(r.transitions_taken, 2u);
}

TEST(Machine, WrongPortDoesNotTrigger) {
  CounterModel m;
  Instance inst(*m.sm, "c");
  inst.start();
  const auto r = inst.deliver({m.inc, "out", {1}});
  EXPECT_FALSE(r.fired);
}

TEST(Machine, UnknownSignalIsDiscarded) {
  CounterModel m;
  auto& other = m.model.create_signal("Other");
  Instance inst(*m.sm, "c");
  inst.start();
  EXPECT_FALSE(inst.deliver({&other, "in", {}}).fired);
}

TEST(Machine, TransitionPriorityIsDeclarationOrder) {
  uml::Model model{"m"};
  auto& sig = model.create_signal("S");
  auto& cls = model.create_class("C", nullptr, true);
  model.add_port(cls, "in").provide(sig);
  auto& sm = model.create_behavior(cls);
  auto& a = model.add_state(sm, "A", true);
  auto& b = model.add_state(sm, "B");
  auto& c = model.add_state(sm, "C");
  model.add_transition(sm, a, b, sig, "in");
  model.add_transition(sm, a, c, sig, "in");  // shadowed by the first
  Instance inst(sm, "i");
  inst.start();
  inst.deliver({&sig, "in", {}});
  EXPECT_EQ(inst.state()->name(), "B");
}

TEST(Machine, TimerTransitionsAndVariables) {
  uml::Model model{"m"};
  auto& cls = model.create_class("C", nullptr, true);
  auto& sm = model.create_behavior(cls);
  sm.declare_variable("ticks", 0);
  auto& a = model.add_state(sm, "A", true);
  a.on_entry(uml::Action::set_timer("t", "50"));
  model.add_timer_transition(sm, a, a, "t")
      .add_effect(uml::Action::assign("ticks", "ticks + 1"));

  Instance inst(sm, "i");
  const auto r0 = inst.start();
  ASSERT_EQ(r0.timers.size(), 1u);
  EXPECT_EQ(r0.timers[0].kind, TimerOp::Kind::Set);
  EXPECT_EQ(r0.timers[0].name, "t");
  EXPECT_EQ(r0.timers[0].delay, 50);

  const auto r1 = inst.timer_fired("t");
  EXPECT_TRUE(r1.fired);
  EXPECT_EQ(inst.variable("ticks"), 1);
  // Re-entering A re-arms the timer.
  ASSERT_EQ(r1.timers.size(), 1u);

  // Unknown timer: discarded.
  EXPECT_FALSE(inst.timer_fired("zzz").fired);
}

TEST(Machine, CompletionLivelockDetected) {
  uml::Model model{"m"};
  auto& cls = model.create_class("C", nullptr, true);
  auto& sm = model.create_behavior(cls);
  auto& a = model.add_state(sm, "A", true);
  auto& b = model.add_state(sm, "B");
  model.add_transition(sm, a, b);  // completion A->B
  model.add_transition(sm, b, a);  // completion B->A
  Instance inst(sm, "i");
  EXPECT_THROW((void)inst.start(), LivelockError);
}

TEST(Machine, UnknownVariableThrows) {
  CounterModel m;
  Instance inst(*m.sm, "c");
  EXPECT_THROW((void)inst.variable("zzz"), std::out_of_range);
}

TEST(Machine, AssignVisibleToLaterActionsInSameStep) {
  uml::Model model{"m"};
  auto& sig = model.create_signal("S");
  auto& out = model.create_signal("Out");
  out.add_parameter("v", "int");
  auto& cls = model.create_class("C", nullptr, true);
  model.add_port(cls, "in").provide(sig);
  model.add_port(cls, "out").require(out);
  auto& sm = model.create_behavior(cls);
  sm.declare_variable("n", 1);
  auto& a = model.add_state(sm, "A", true);
  model.add_transition(sm, a, a, sig, "in")
      .add_effect(uml::Action::assign("n", "n * 2"))
      .add_effect(uml::Action::assign("n", "n + 1"))
      .add_effect(uml::Action::send("out", out, {"n"}));
  Instance inst(sm, "i");
  inst.start();
  const auto r = inst.deliver({&sig, "in", {}});
  ASSERT_EQ(r.sends.size(), 1u);
  EXPECT_EQ(r.sends[0].args[0], 3);
  EXPECT_EQ(inst.variable("n"), 3);
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

namespace {

struct RoutedModel {
  uml::Model model{"routed"};
  uml::Signal* s;
  uml::Class* leaf;
  uml::Class* top;
  uml::Property* p1;
  uml::Property* p2;

  RoutedModel() {
    s = &model.create_signal("S");
    leaf = &model.create_class("Leaf", nullptr, true);
    model.add_port(*leaf, "a").provide(*s).require(*s);
    model.add_port(*leaf, "b").provide(*s).require(*s);
    top = &model.create_class("Top");
    model.add_port(*top, "ext").provide(*s);
    p1 = &model.add_part(*top, "p1", *leaf);
    p2 = &model.add_part(*top, "p2", *leaf);
    model.connect(*top, "p1", "a", "p2", "a");
    model.connect_boundary(*top, "ext", "p1", "b");
  }
};

}  // namespace

TEST(Router, RoutesBetweenParts) {
  RoutedModel m;
  Router router(*m.top);
  const Endpoint d = router.destination(*m.p1, "a");
  EXPECT_EQ(d.part, m.p2);
  ASSERT_NE(d.port, nullptr);
  EXPECT_EQ(d.port->name(), "a");
  // And symmetrically.
  const Endpoint back = router.destination(*m.p2, "a");
  EXPECT_EQ(back.part, m.p1);
}

TEST(Router, DelegationRoutesToEnvironmentFromInside) {
  RoutedModel m;
  Router router(*m.top);
  const Endpoint d = router.destination(*m.p1, "b");
  // p1.b is wired to the boundary port: from the inside this is the
  // environment.
  EXPECT_TRUE(d.is_environment());
  ASSERT_NE(d.port, nullptr);
  EXPECT_EQ(d.port->name(), "ext");
}

TEST(Router, BoundaryInjection) {
  RoutedModel m;
  Router router(*m.top);
  const Endpoint d = router.boundary_destination("ext");
  EXPECT_EQ(d.part, m.p1);
  EXPECT_EQ(d.port->name(), "b");
  EXPECT_TRUE(router.boundary_destination("nosuch").is_environment());
  EXPECT_EQ(router.boundary_destination("nosuch").port, nullptr);
}

TEST(Router, UnconnectedPortIsEnvironment) {
  RoutedModel m;
  auto& p3 = m.model.add_part(*m.top, "p3", *m.leaf);
  Router router(*m.top);
  EXPECT_TRUE(router.destination(p3, "a").is_environment());
  EXPECT_EQ(router.destination(p3, "a").port, nullptr);
  // Unknown port name: environment too.
  EXPECT_TRUE(router.destination(*m.p1, "zz").is_environment());
}
