// Tests for the discrete-event kernel, the simulation log and the
// co-simulator on the MiniSystem fixture.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "sim/simulator.hpp"

using namespace tut;
using namespace tut::sim;

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

TEST(Kernel, RunsEventsInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(30, [&] { order.push_back(3); });
  k.schedule_at(10, [&] { order.push_back(1); });
  k.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(k.run(100), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 100u);
}

TEST(Kernel, SimultaneousEventsAreFifo) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    k.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  k.run(5);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Kernel, HandlersMayScheduleMoreEvents) {
  Kernel k;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) k.schedule_in(10, tick);
  };
  k.schedule_at(0, tick);
  k.run(1000);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(k.dispatched(), 5u);
}

TEST(Kernel, HorizonStopsExecution) {
  Kernel k;
  int count = 0;
  k.schedule_at(10, [&] { ++count; });
  k.schedule_at(20, [&] { ++count; });
  k.run(15);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(k.pending(), 1u);
  // Event exactly at the horizon runs.
  k.run(20);
  EXPECT_EQ(count, 2);
}

TEST(Kernel, SchedulingInThePastThrows) {
  Kernel k;
  k.schedule_at(50, [] {});
  k.run(100);
  try {
    k.schedule_at(50, [] {});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    // The diagnostic names both times so the offending call is findable.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("at=50"), std::string::npos) << msg;
    EXPECT_NE(msg.find("now=100"), std::string::npos) << msg;
  }
  // Scheduling exactly at now() stays legal.
  k.schedule_at(100, [] {});
}

TEST(Kernel, NoDoubleDispatchAtHorizon) {
  Kernel k;
  int count = 0;
  // An event exactly at the horizon that schedules a zero-delay child: both
  // must run in this run() call, and a second run() at the same horizon must
  // not re-dispatch either of them.
  k.schedule_at(100, [&] {
    ++count;
    k.schedule_at(100, [&] { ++count; });
  });
  EXPECT_EQ(k.run(100), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(k.run(100), 0u);
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(k.empty());
}

TEST(Kernel, ZeroDelayRunsAfterSameTimeHeapEvents) {
  // Scheduling order across the heap and the same-time fast path must stay
  // exact (time, seq) FIFO: events scheduled earlier for time t run before
  // zero-delay events created at time t.
  Kernel k;
  std::vector<int> order;
  k.schedule_at(10, [&] {
    order.push_back(1);
    k.schedule_at(10, [&] { order.push_back(3); });  // created at t=10
  });
  k.schedule_at(10, [&] { order.push_back(2); });  // scheduled before t=10
  k.run(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// SimulationLog
// ---------------------------------------------------------------------------

TEST(SimLog, TextRoundTrip) {
  SimulationLog log;
  log.run(100, "p1", 50, 1000);
  log.send(1100, "p1", "p2", "Req", 8);
  log.receive(1140, "p2", "p1", "Req");
  log.drop(1200, "p2", "Bogus");
  log.send(1300, "p2", kEnvironment, "Rsp", 12);

  const std::string text = log.to_text();
  const SimulationLog parsed = SimulationLog::parse(text);
  ASSERT_EQ(parsed.size(), log.size());
  EXPECT_EQ(parsed.to_text(), text);

  const auto& r = parsed.records();
  EXPECT_EQ(r[0].kind, LogRecord::Kind::Run);
  EXPECT_EQ(r[0].cycles, 50);
  EXPECT_EQ(r[0].duration, 1000u);
  EXPECT_EQ(r[1].kind, LogRecord::Kind::Send);
  EXPECT_EQ(r[1].peer, "p2");
  EXPECT_EQ(r[1].bytes, 8u);
  EXPECT_EQ(r[2].kind, LogRecord::Kind::Receive);
  EXPECT_EQ(r[3].kind, LogRecord::Kind::Drop);
  EXPECT_EQ(r[4].peer, kEnvironment);
}

TEST(SimLog, ParserSkipsCommentsAndBlankLines) {
  const auto log = SimulationLog::parse("# header\n\nR 1 p 2 3\n# tail\n");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].process, "p");
}

TEST(SimLog, ParserRejectsMalformedLines) {
  EXPECT_THROW((void)SimulationLog::parse("X 1 2 3\n"), std::runtime_error);
  EXPECT_THROW((void)SimulationLog::parse("R 1 p\n"), std::runtime_error);
  EXPECT_THROW((void)SimulationLog::parse("S 1 a b\n"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Co-simulation of the MiniSystem
// ---------------------------------------------------------------------------

namespace {

struct SimFixture : ::testing::Test {
  test::MiniSystem sys;
  mapping::SystemView view{sys.model};
};

const LogRecord* first_record(const SimulationLog& log, LogRecord::Kind kind,
                              const std::string& process) {
  for (const auto& r : log.records()) {
    if (r.kind == kind && r.process == process) return &r;
  }
  return nullptr;
}

std::size_t count_records(const SimulationLog& log, LogRecord::Kind kind,
                          const std::string& process = "") {
  std::size_t n = 0;
  for (const auto& r : log.records()) {
    if (r.kind == kind && (process.empty() || r.process == process)) ++n;
  }
  return n;
}

}  // namespace

TEST_F(SimFixture, RunsAndProducesLog) {
  Simulation sim(view, {.horizon = 200'000});
  sim.run();
  EXPECT_EQ(sim.now(), 200'000u);
  EXPECT_GT(sim.log().size(), 10u);
  EXPECT_GT(sim.events_dispatched(), 10u);
}

TEST_F(SimFixture, ControllerComputeCostMatchesFrequency) {
  Simulation sim(view, {.horizon = 10'000});
  sim.run();
  // ctrl runs 50 cycles on a 50 MHz cpu: 1000 ticks.
  const LogRecord* run = nullptr;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Run && r.process == "ctrl" && r.cycles > 0) {
      run = &r;
      break;
    }
  }
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->cycles, 50);
  EXPECT_EQ(run->duration, 1000u);
}

TEST_F(SimFixture, DspComputeAtDspFrequency) {
  Simulation sim(view, {.horizon = 100'000});
  sim.run();
  // dsp1 computes 400*8 = 3200 cycles at 80 MHz -> 40000 ticks.
  const LogRecord* run = nullptr;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Run && r.process == "dsp1" && r.cycles > 0) {
      run = &r;
      break;
    }
  }
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->cycles, 3200);
  EXPECT_EQ(run->duration, 40'000u);
}

TEST_F(SimFixture, RemoteSendHasBusLatency) {
  Simulation sim(view, {.horizon = 50'000});
  sim.run();
  const LogRecord* send = first_record(sim.log(), LogRecord::Kind::Send, "ctrl");
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->peer, "dsp1");
  EXPECT_EQ(send->signal, "Req");
  EXPECT_EQ(send->bytes, 8u);
  // The matching receive is strictly later (bus transfer takes time).
  const LogRecord* recv = nullptr;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Receive && r.process == "dsp1") {
      recv = &r;
      break;
    }
  }
  ASSERT_NE(recv, nullptr);
  EXPECT_GT(recv->time, send->time);
  // Req is 8 bytes on a 32-bit 100 MHz segment: 2 words + 2 overhead cycles
  // = 4 cycles = 40 ticks.
  EXPECT_EQ(recv->time - send->time, 40u);
}

TEST_F(SimFixture, CrossBridgeRouteUsesAllSegments) {
  Simulation sim(view, {.horizon = 300'000});
  sim.run();
  const auto& stats = sim.segment_stats();
  EXPECT_GT(stats.at("seg1").transfers, 0u);
  EXPECT_GT(stats.at("bridge").transfers, 0u);
  EXPECT_GT(stats.at("seg2").transfers, 0u);
  // Waiting can only happen when there is contention; busy time must be
  // nonzero wherever transfers happened.
  EXPECT_GT(stats.at("bridge").busy_time, 0u);
}

TEST_F(SimFixture, PeStatsAccumulate) {
  Simulation sim(view, {.horizon = 300'000});
  sim.run();
  const auto& stats = sim.pe_stats();
  EXPECT_GT(stats.at("cpu1").busy_time, 0u);
  EXPECT_GT(stats.at("cpu2").busy_time, 0u);
  EXPECT_GT(stats.at("acc").steps, 0u);
  // The dsp does the heavy lifting in this fixture.
  EXPECT_GT(stats.at("cpu2").busy_time, stats.at("cpu1").busy_time);
}

TEST_F(SimFixture, EnvironmentInjectionReachesProcess) {
  Simulation sim(view, {.horizon = 500'000});
  sim.inject(1000, "pin", *sys.req, {4});
  sim.run();
  // dsp2 received the injected Req and computed 400*4 = 1600 cycles.
  const LogRecord* recv = nullptr;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Receive && r.process == "dsp2") {
      recv = &r;
      break;
    }
  }
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(recv->peer, kEnvironment);
  EXPECT_EQ(recv->time, 1000u);
  const LogRecord* run = nullptr;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Run && r.process == "dsp2" && r.cycles > 0) {
      run = &r;
      break;
    }
  }
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->cycles, 1600);
}

TEST_F(SimFixture, InjectionOfUnhandledSignalIsDropped) {
  // dsp2's 'in' port cannot handle Rsp in state Idle via port 'in'.
  Simulation sim(view, {.horizon = 100'000});
  sim.inject(500, "pin", *sys.rsp, {0});
  sim.run();
  EXPECT_EQ(count_records(sim.log(), LogRecord::Kind::Drop, "dsp2"), 1u);
}

TEST_F(SimFixture, InjectPeriodicSchedulesAllOccurrences) {
  Simulation sim(view, {.horizon = 1'000'000});
  sim.inject_periodic(1000, 50'000, 5, "pin", *sys.req, {1});
  sim.run();
  std::size_t received = 0;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Receive && r.process == "dsp2") ++received;
  }
  EXPECT_EQ(received, 5u);
}

TEST_F(SimFixture, SendsToUnconnectedPortGoToEnvironment) {
  Simulation sim(view, {.horizon = 1'000'000});
  sim.inject(1000, "pin", *sys.req, {2});
  sim.run();
  // dsp2 forwards to its unconnected 'hw' port -> environment.
  bool env_send = false;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Send && r.process == "dsp2" &&
        r.peer == kEnvironment) {
      env_send = true;
    }
  }
  EXPECT_TRUE(env_send);
}

TEST_F(SimFixture, DeterministicAcrossRuns) {
  Simulation a(view, {.horizon = 250'000});
  Simulation b(view, {.horizon = 250'000});
  a.inject_periodic(0, 10'000, 10, "pin", *sys.req, {3});
  b.inject_periodic(0, 10'000, 10, "pin", *sys.req, {3});
  a.run();
  b.run();
  EXPECT_EQ(a.log().to_text(), b.log().to_text());
}

TEST_F(SimFixture, RunCanBeResumedWithHigherHorizon) {
  Simulation sim(view, {.horizon = 10'000});
  sim.run();
  const std::size_t after_first = sim.log().size();
  sim.run_until(100'000);
  EXPECT_GT(sim.log().size(), after_first);
  EXPECT_EQ(sim.now(), 100'000u);
}

TEST_F(SimFixture, InstanceInspection) {
  Simulation sim(view, {.horizon = 150'000});
  sim.run();
  EXPECT_NO_THROW((void)sim.instance("dsp1"));
  EXPECT_GT(sim.instance("dsp1").variable("n"), 0);
  EXPECT_THROW((void)sim.instance("nosuch"), std::out_of_range);
}

TEST(SimErrors, UnmappedProcessThrows) {
  test::MiniSystem sys;
  // Add a process whose group is never mapped.
  auto& p = sys.model.add_part(*sys.app, "orphan", *sys.ctrl_comp);
  p.apply(*sys.prof.application_process);
  mapping::SystemView view(sys.model);
  EXPECT_THROW((Simulation{view}), std::runtime_error);
}

TEST(SimErrors, BehaviorlessComponentThrows) {
  uml::Model model{"m"};
  auto prof = profile::install(model);
  appmodel::ApplicationBuilder ab(model, prof);
  ab.application("A");
  auto& comp = model.create_class("NoSm", nullptr, true);
  comp.apply(*prof.application_component);
  auto& proc = ab.process("p", comp);
  auto& grp = ab.group("g");
  ab.assign(proc, grp);
  platform::PlatformBuilder pb(model, prof);
  pb.platform("P");
  auto& t = pb.component_type("Cpu", {{"Type", "general"}});
  auto& inst = pb.instance("cpu", t);
  mapping::MappingBuilder mb(model, prof);
  mb.map(grp, inst);
  mapping::SystemView view(model);
  EXPECT_THROW((Simulation{view}), std::runtime_error);
}

TEST(SimErrors, UnroutablePesThrow) {
  uml::Model model{"m"};
  auto prof = profile::install(model);
  auto& sig = model.create_signal("S");
  appmodel::ApplicationBuilder ab(model, prof);
  ab.application("A");
  auto& comp = ab.component("C");
  model.add_port(comp, "io").provide(sig).require(sig);
  auto& sm = *comp.behavior();
  model.add_state(sm, "Idle", true);
  auto& p1 = ab.process("p1", comp);
  auto& p2 = ab.process("p2", comp);
  auto& g1 = ab.group("g1");
  auto& g2 = ab.group("g2");
  ab.assign(p1, g1);
  ab.assign(p2, g2);
  platform::PlatformBuilder pb(model, prof);
  pb.platform("P");
  auto& t = pb.component_type("Cpu", {{"Type", "general"}});
  auto& cpu1 = pb.instance("cpu1", t);
  auto& cpu2 = pb.instance("cpu2", t);
  // No segments at all: cpu1 and cpu2 cannot communicate.
  mapping::MappingBuilder mb(model, prof);
  mb.map(g1, cpu1);
  mb.map(g2, cpu2);
  mapping::SystemView view(model);
  EXPECT_THROW((Simulation{view}), std::runtime_error);
}

TEST(SimErrors, AllDefectsAreReportedInOneDiagnostic) {
  test::MiniSystem sys;
  // Two independent defects: an unmapped process and a behaviourless
  // component. The constructor must list both, not bail at the first.
  auto& orphan = sys.model.add_part(*sys.app, "orphan", *sys.ctrl_comp);
  orphan.apply(*sys.prof.application_process);
  auto& bare = sys.model.create_class("Bare", nullptr, true);
  bare.apply(*sys.prof.application_component);
  auto& mute = sys.model.add_part(*sys.app, "mute", bare);
  mute.apply(*sys.prof.application_process);
  mapping::SystemView view(sys.model);
  try {
    Simulation simulation(view);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("defects"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'orphan'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'mute'"), std::string::npos) << msg;
  }
}

TEST(SimInject, AfterRunAcceptsFutureRejectsPast) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  Config config;
  config.horizon = 10'000;
  Simulation sim(view, config);
  sim.run();
  ASSERT_EQ(sim.now(), 10'000u);

  // t >= now() is valid — the event runs in the next run_until window.
  sim.inject(10'000, "pin", *sys.req, {1});
  sim.inject(12'000, "pin", *sys.req, {1});
  EXPECT_THROW(sim.inject(9'999, "pin", *sys.req, {1}),
               std::invalid_argument);

  sim.run_until(20'000);
  std::size_t received = 0;
  for (const LogRecord& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Receive && r.process == "dsp2") ++received;
  }
  EXPECT_EQ(received, 2u);
}

// ---------------------------------------------------------------------------
// Wrapper MaxTime chunking and config knobs
// ---------------------------------------------------------------------------

namespace {

/// Two PEs on one segment; the sender's wrapper has a small MaxTime so a
/// large transfer must re-arbitrate in chunks.
struct ChunkedSystem {
  uml::Model model{"chunked"};
  profile::TutProfile prof = profile::install(model);
  uml::Signal* big = nullptr;

  ChunkedSystem(long max_time_cycles) {
    big = &model.create_signal("Big");
    big->set_payload_bytes(512);  // 128 words on a 32-bit bus

    appmodel::ApplicationBuilder ab(model, prof);
    auto& app = ab.application("ChunkApp");
    auto& src_cls = ab.component("Src");
    model.add_port(src_cls, "out").require(*big);
    {
      auto& sm = *src_cls.behavior();
      auto& idle = model.add_state(sm, "Idle", true);
      idle.on_entry(uml::Action::set_timer("t", "100"));
      auto& done = model.add_state(sm, "Done");
      model.add_timer_transition(sm, idle, done, "t")
          .add_effect(uml::Action::send("out", *big));
    }
    auto& dst_cls = ab.component("Dst");
    model.add_port(dst_cls, "in").provide(*big);
    {
      auto& sm = *dst_cls.behavior();
      auto& idle = model.add_state(sm, "Idle", true);
      model.add_transition(sm, idle, idle, *big, "in")
          .add_effect(uml::Action::compute("1"));
    }
    auto& p_src = ab.process("src", src_cls);
    auto& p_dst = ab.process("dst", dst_cls);
    model.connect(app, "src", "out", "dst", "in");
    auto& g1 = ab.group("g1");
    auto& g2 = ab.group("g2");
    ab.assign(p_src, g1);
    ab.assign(p_dst, g2);

    platform::PlatformBuilder pb(model, prof);
    pb.platform("P");
    auto& cpu = pb.component_type("Cpu", {{"Type", "general"},
                                          {"Frequency", "100"}});
    auto& pe1 = pb.instance("pe1", cpu);
    auto& pe2 = pb.instance("pe2", cpu);
    auto& seg = pb.segment("bus", {{"DataWidth", "32"}, {"Frequency", "100"}});
    pb.wrapper(pe1, seg, {{"MaxTime", std::to_string(max_time_cycles)}});
    pb.wrapper(pe2, seg);
    mapping::MappingBuilder mb(model, prof);
    mb.map(g1, pe1);
    mb.map(g2, pe2);
  }
};

}  // namespace

TEST(MaxTimeChunking, LargeTransferSplitsIntoGrants) {
  // 512 bytes -> 128 words + 2 overhead cycles = 130 cycles; MaxTime 4
  // means ceil(130 / 4) = 33 grants for one logical transfer.
  ChunkedSystem sys(4);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 100'000});
  sim.run();
  const auto& stats = sim.segment_stats().at("bus");
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.grants, 33u);
  // Total busy time equals the uncapped transfer time (130 cycles at
  // 100 MHz = 1300 ticks): chunking re-arbitrates but wastes no bandwidth
  // when the segment is otherwise idle.
  EXPECT_EQ(stats.busy_time, 1300u);
}

TEST(MaxTimeChunking, UnlimitedUsesOneGrant) {
  ChunkedSystem sys(0);  // MaxTime 0 = unlimited
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 100'000});
  sim.run();
  const auto& stats = sim.segment_stats().at("bus");
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.grants, 1u);
  EXPECT_EQ(stats.busy_time, 1300u);
}

TEST(SimConfig, LogRunsCanBeDisabled) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 50'000, .log_runs = false});
  sim.run();
  std::size_t runs = 0, sends = 0;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Run) ++runs;
    if (r.kind == LogRecord::Kind::Send) ++sends;
  }
  EXPECT_EQ(runs, 0u);
  EXPECT_GT(sends, 0u);
  // Stats still accumulate.
  EXPECT_GT(sim.pe_stats().at("cpu1").busy_time, 0u);
}

TEST(SimConfig, SegmentOverheadConfigurable) {
  ChunkedSystem a(0), b(0);
  mapping::SystemView va(a.model), vb(b.model);
  Simulation sa(va, {.horizon = 100'000, .segment_overhead_cycles = 2});
  Simulation sb(vb, {.horizon = 100'000, .segment_overhead_cycles = 30});
  sa.run();
  sb.run();
  // 28 extra cycles at 100 MHz = 280 extra ticks of bus busy time.
  EXPECT_EQ(sb.segment_stats().at("bus").busy_time -
                sa.segment_stats().at("bus").busy_time,
            280u);
}
