// Tests for the fault-injection subsystem: the FaultPlan data model and XML
// interchange, the counter-based FaultRng, and the co-simulator's
// degraded-mode semantics (failover migration, bounded retry, signal fault
// windows, watchdog resets) plus the profiler's reliability section.
#include <gtest/gtest.h>

#include <algorithm>

#include "fixtures.hpp"
#include "profiler/profiler.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::sim;

namespace {

/// Records of one kind, in log order.
std::vector<LogRecord> records_of(const SimulationLog& log,
                                  LogRecord::Kind kind) {
  std::vector<LogRecord> out;
  for (const LogRecord& r : log.records()) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

/// Runs MiniSystem to `horizon` under `plan`, without environment traffic.
std::unique_ptr<Simulation> run_mini(const test::MiniSystem& sys,
                                     const FaultPlan& plan, Time horizon) {
  mapping::SystemView view(sys.model);
  Config config;
  config.horizon = horizon;
  config.faults = plan;
  auto simulation = std::make_unique<Simulation>(view, config);
  simulation->run();
  return simulation;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultRng
// ---------------------------------------------------------------------------

TEST(FaultRng, DrawIsAPureFunction) {
  const auto a = FaultRng::draw(1, 42, 0);
  EXPECT_EQ(a, FaultRng::draw(1, 42, 0));
  EXPECT_NE(a, FaultRng::draw(1, 42, 1));
  EXPECT_NE(a, FaultRng::draw(1, 43, 0));
  EXPECT_NE(a, FaultRng::draw(2, 42, 0));
}

TEST(FaultRng, KeyIsStablePerName) {
  EXPECT_EQ(FaultRng::key("seg1"), FaultRng::key("seg1"));
  EXPECT_NE(FaultRng::key("seg1"), FaultRng::key("seg2"));
}

TEST(FaultRng, DrawsAreRoughlyUniform) {
  // ppm thresholding needs draws spread over the 64-bit range; a crude
  // bucket check catches catastrophic mixing failures.
  const std::uint64_t key = FaultRng::key("segment");
  int low = 0;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    if (FaultRng::draw(7, key, s) % 1'000'000 < 500'000) ++low;
  }
  EXPECT_GT(low, 400);
  EXPECT_LT(low, 600);
}

// ---------------------------------------------------------------------------
// FaultPlan validation and XML interchange
// ---------------------------------------------------------------------------

TEST(FaultPlan, EmptyPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.validate().empty());
  plan.watchdog_timeout = 1;
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ValidateRejectsMalformedWindows) {
  FaultPlan plan;
  plan.pe_faults.push_back({"cpu", 100, 50});           // end <= start
  plan.segment_faults.push_back({"", 0, 0});            // no name
  plan.bit_errors.push_back({"seg", 2'000'000});        // > 1e6 ppm
  plan.signal_faults.push_back(
      {SignalFault::Kind::Stuck, "p", "", 10, 0});      // stuck needs window
  const auto defects = plan.validate();
  EXPECT_EQ(defects.size(), 4u);
}

TEST(FaultPlan, XmlRoundTripIsByteStable) {
  FaultPlan plan;
  plan.seed = 99;
  plan.watchdog_timeout = 5'000;
  plan.max_retries = 2;
  plan.retry_backoff = 150;
  plan.pe_faults.push_back({"cpu2", 1'000, 9'000});
  plan.pe_faults.push_back({"acc", 2'000, 0});
  plan.segment_faults.push_back({"seg1", 0, 500});
  plan.bit_errors.push_back({"bridge", 1'234});
  plan.signal_faults.push_back({SignalFault::Kind::Stuck, "dsp2", "Req", 5, 25});
  plan.signal_faults.push_back({SignalFault::Kind::Lost, "ctrl", "", 0, 0});

  const std::string text = plan.to_xml_text();
  const FaultPlan parsed = FaultPlan::from_xml_text(text);
  EXPECT_EQ(parsed.to_xml_text(), text);
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_EQ(parsed.watchdog_timeout, 5'000u);
  EXPECT_EQ(parsed.max_retries, 2);
  EXPECT_EQ(parsed.retry_backoff, 150u);
  ASSERT_EQ(parsed.pe_faults.size(), 2u);
  EXPECT_EQ(parsed.pe_faults[1].end, 0u);
  ASSERT_EQ(parsed.signal_faults.size(), 2u);
  EXPECT_EQ(parsed.signal_faults[0].kind, SignalFault::Kind::Stuck);
  EXPECT_EQ(parsed.signal_faults[1].signal, "");
}

TEST(FaultPlan, DefectMessagesCarryStableRuleTags) {
  // The loader's error strings are machine-matchable: each defect carries a
  // "[rule]" tag that callers (CLI, analysis layer) key on.
  const auto message_of = [](std::string_view text) -> std::string {
    try {
      FaultPlan::from_xml_text(text);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  // Negative time into an unsigned field is its own story, not generic
  // number garbage.
  const std::string neg = message_of(
      "<tut:faultplan><peFault component=\"c\" start=\"-5\"/>"
      "</tut:faultplan>");
  EXPECT_NE(neg.find("[fault.time.negative]"), std::string::npos) << neg;

  const std::string garbage = message_of(
      "<tut:faultplan><peFault component=\"c\" start=\"soon\"/>"
      "</tut:faultplan>");
  EXPECT_NE(garbage.find("[fault.attr.malformed]"), std::string::npos)
      << garbage;

  const std::string order = message_of(
      "<tut:faultplan><peFault component=\"c\" start=\"9\" end=\"3\"/>"
      "</tut:faultplan>");
  EXPECT_NE(order.find("[fault.window.order]"), std::string::npos) << order;

  const std::string rate = message_of(
      "<tut:faultplan><bitError segment=\"s\" ratePpm=\"2000000\"/>"
      "</tut:faultplan>");
  EXPECT_NE(rate.find("[fault.biterror.rate]"), std::string::npos) << rate;
}

TEST(FaultPlan, ParserRejectsBadDocuments) {
  EXPECT_THROW(FaultPlan::from_xml_text("<wrong/>"), std::invalid_argument);
  EXPECT_THROW(
      FaultPlan::from_xml_text("<tut:faultplan><bogus/></tut:faultplan>"),
      std::invalid_argument);
  EXPECT_THROW(FaultPlan::from_xml_text(
                   "<tut:faultplan><signalFault process=\"p\" kind=\"weird\"/>"
                   "</tut:faultplan>"),
               std::invalid_argument);
  // Structurally valid XML carrying an invalid plan fails validation.
  EXPECT_THROW(FaultPlan::from_xml_text(
                   "<tut:faultplan><peFault component=\"c\" start=\"9\" "
                   "end=\"3\"/></tut:faultplan>"),
               std::invalid_argument);
}

TEST(FaultPlan, UnknownComponentNamesAreCtorDefects) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  Config config;
  config.faults.pe_faults.push_back({"nope", 0, 0});
  config.faults.segment_faults.push_back({"missing_seg", 0, 0});
  try {
    Simulation simulation(view, config);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 defects"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'nope'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'missing_seg'"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// PE fail/recover and failover migration
// ---------------------------------------------------------------------------

TEST(PeFault, ProcessesMigrateToSurvivorAndBack) {
  test::MiniSystem sys;
  FaultPlan plan;
  plan.pe_faults.push_back({"cpu2", 10'000, 100'000});
  const auto simulation = run_mini(sys, plan, 150'000);
  const auto& log = simulation->log();

  const auto faults = records_of(log, LogRecord::Kind::Fault);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].process, "cpu2");
  EXPECT_EQ(faults[0].time, 10'000u);
  const auto clears = records_of(log, LogRecord::Kind::Clear);
  ASSERT_EQ(clears.size(), 1u);
  EXPECT_EQ(clears[0].time, 100'000u);

  // dsp1 and dsp2 live on cpu2; the only compatible survivor is cpu1 (the
  // accelerator is excluded for software processes). Both migrate out at
  // 10'000 and home again at 100'000.
  const auto moves = records_of(log, LogRecord::Kind::Migrate);
  ASSERT_EQ(moves.size(), 4u);
  for (const auto& m : {moves[0], moves[1]}) {
    EXPECT_EQ(m.time, 10'000u);
    EXPECT_EQ(m.peer, "cpu2");
    EXPECT_EQ(m.signal, "cpu1");
    EXPECT_TRUE(m.process == "dsp1" || m.process == "dsp2");
  }
  for (const auto& m : {moves[2], moves[3]}) {
    EXPECT_EQ(m.time, 100'000u);
    EXPECT_EQ(m.peer, "cpu1");
    EXPECT_EQ(m.signal, "cpu2");
  }

  // dsp1 keeps executing during the outage — on cpu1.
  bool dsp1_ran_mid_fault = false;
  for (const LogRecord& r : records_of(log, LogRecord::Kind::Run)) {
    if (r.process == "dsp1" && r.time > 10'000 && r.time < 100'000) {
      dsp1_ran_mid_fault = true;
    }
  }
  EXPECT_TRUE(dsp1_ran_mid_fault);
}

TEST(PeFault, HardwareProcessWithoutSurvivorStallsUntilRecovery) {
  test::MiniSystem sys;
  FaultPlan plan;
  plan.pe_faults.push_back({"acc", 10'000, 80'000});
  const auto simulation = run_mini(sys, plan, 150'000);
  const auto& log = simulation->log();

  // crc is the only hardware process and acc the only accelerator: nothing
  // to migrate to, so no M records, and crc executes nothing while down.
  EXPECT_TRUE(records_of(log, LogRecord::Kind::Migrate).empty());
  bool ran_mid_fault = false;
  bool ran_after_recovery = false;
  for (const LogRecord& r : records_of(log, LogRecord::Kind::Run)) {
    if (r.process != "crc") continue;
    if (r.time >= 10'000 && r.time < 80'000) ran_mid_fault = true;
    if (r.time >= 80'000) ran_after_recovery = true;
  }
  EXPECT_FALSE(ran_mid_fault);
  EXPECT_TRUE(ran_after_recovery);
}

// ---------------------------------------------------------------------------
// Segment faults, retry/backoff and bit errors
// ---------------------------------------------------------------------------

TEST(SegmentFault, ShortOutageIsAbsorbedByRetries) {
  test::MiniSystem sys;
  FaultPlan plan;
  plan.segment_faults.push_back({"seg1", 0, 1'200});
  const auto simulation = run_mini(sys, plan, 30'000);
  const auto& log = simulation->log();

  EXPECT_FALSE(records_of(log, LogRecord::Kind::Retry).empty());
  EXPECT_TRUE(records_of(log, LogRecord::Kind::Drop).empty());
  bool delivered = false;
  for (const LogRecord& r : records_of(log, LogRecord::Kind::Receive)) {
    if (r.process == "dsp1" && r.signal == "Req") delivered = true;
  }
  EXPECT_TRUE(delivered);
}

TEST(SegmentFault, LongOutageExhaustsRetriesAndDrops) {
  test::MiniSystem sys;
  FaultPlan plan;
  plan.segment_faults.push_back({"seg1", 0, 20'000});
  const auto simulation = run_mini(sys, plan, 40'000);
  const auto& log = simulation->log();

  // Attempts escalate 1..max_retries, then the transfer drops at the
  // destination.
  const auto retries = records_of(log, LogRecord::Kind::Retry);
  ASSERT_FALSE(retries.empty());
  long max_attempt = 0;
  for (const LogRecord& r : retries) max_attempt = std::max(max_attempt, r.cycles);
  EXPECT_EQ(max_attempt, 4);  // the plan's default max_retries
  bool dropped = false;
  for (const LogRecord& r : records_of(log, LogRecord::Kind::Drop)) {
    if (r.process == "dsp1" && r.signal == "Req") dropped = true;
  }
  EXPECT_TRUE(dropped);
  // After the segment recovers, traffic flows again.
  bool delivered_after = false;
  for (const LogRecord& r : records_of(log, LogRecord::Kind::Receive)) {
    if (r.process == "dsp1" && r.time >= 20'000) delivered_after = true;
  }
  EXPECT_TRUE(delivered_after);
}

TEST(BitErrors, CertainCorruptionDropsEveryTransfer) {
  test::MiniSystem sys;
  FaultPlan plan;
  plan.bit_errors.push_back({"seg1", 1'000'000});  // every hop corrupts
  const auto simulation = run_mini(sys, plan, 30'000);
  const auto& log = simulation->log();

  EXPECT_FALSE(records_of(log, LogRecord::Kind::Retry).empty());
  for (const LogRecord& r : records_of(log, LogRecord::Kind::Receive)) {
    EXPECT_NE(r.process, "dsp1");  // nothing survives seg1
  }
}

TEST(BitErrors, SameSeedIsByteIdenticalAcrossRuns) {
  test::MiniSystem sys;
  FaultPlan plan;
  plan.seed = 7;
  plan.bit_errors.push_back({"seg1", 300'000});
  plan.bit_errors.push_back({"bridge", 300'000});
  const std::string first = run_mini(sys, plan, 60'000)->log().to_text();
  const std::string second = run_mini(sys, plan, 60'000)->log().to_text();
  EXPECT_EQ(first, second);
  // And the faulty run really diverged from the healthy one.
  EXPECT_NE(first, run_mini(sys, FaultPlan{}, 60'000)->log().to_text());
}

// ---------------------------------------------------------------------------
// Signal fault windows
// ---------------------------------------------------------------------------

TEST(SignalFault, LostWindowDropsThenRecovers) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  Config config;
  config.horizon = 20'000;
  config.faults.signal_faults.push_back(
      {SignalFault::Kind::Lost, "dsp2", "Req", 0, 8'000});
  Simulation simulation(view, config);
  simulation.inject(5'000, "pin", *sys.req, {4});
  simulation.inject(9'000, "pin", *sys.req, {4});
  simulation.run();

  bool dropped_at_5000 = false;
  for (const LogRecord& r :
       records_of(simulation.log(), LogRecord::Kind::Drop)) {
    if (r.process == "dsp2" && r.time == 5'000) dropped_at_5000 = true;
  }
  EXPECT_TRUE(dropped_at_5000);
  std::vector<Time> received;
  for (const LogRecord& r :
       records_of(simulation.log(), LogRecord::Kind::Receive)) {
    if (r.process == "dsp2") received.push_back(r.time);
  }
  EXPECT_EQ(received, (std::vector<Time>{9'000}));
}

TEST(SignalFault, StuckWindowHoldsAndFlushesAtClose) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  Config config;
  config.horizon = 20'000;
  config.faults.signal_faults.push_back(
      {SignalFault::Kind::Stuck, "dsp2", "Req", 0, 8'000});
  Simulation simulation(view, config);
  simulation.inject(5'000, "pin", *sys.req, {4});
  simulation.run();

  std::vector<Time> received;
  for (const LogRecord& r :
       records_of(simulation.log(), LogRecord::Kind::Receive)) {
    if (r.process == "dsp2") received.push_back(r.time);
  }
  // Held at 5'000, delivered when the window closes.
  EXPECT_EQ(received, (std::vector<Time>{8'000}));
  EXPECT_TRUE(records_of(simulation.log(), LogRecord::Kind::Drop).empty());
}

// ---------------------------------------------------------------------------
// Watchdog resets
// ---------------------------------------------------------------------------

TEST(Watchdog, IdleProcessIsResetAndRestartsCleanly) {
  test::MiniSystem sys;
  FaultPlan plan;
  plan.watchdog_timeout = 50'000;
  const auto simulation = run_mini(sys, plan, 200'000);

  // dsp2 gets no traffic (nothing injected on "pin"), so only its watchdog
  // fires; busy processes (ctrl, dsp1) never trip theirs.
  const auto resets = records_of(simulation->log(), LogRecord::Kind::Watchdog);
  ASSERT_FALSE(resets.empty());
  for (const LogRecord& r : resets) EXPECT_EQ(r.process, "dsp2");
  // Not one reset per period: cpu2 is saturated by dsp1, so the reset step
  // itself runs late and pushes last-progress forward. Two firings fit.
  EXPECT_GE(resets.size(), 2u);
  EXPECT_EQ(resets[0].time, 50'000u);

  // The reset re-entered the initial state.
  const efsm::Instance& dsp2 = simulation->instance("dsp2");
  ASSERT_NE(dsp2.state(), nullptr);
  EXPECT_EQ(dsp2.state()->name(), "Idle");
}

// ---------------------------------------------------------------------------
// Zero cost when off
// ---------------------------------------------------------------------------

TEST(ZeroCost, EmptyPlanMatchesDefaultConfigByteForByte) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);

  Config plain;
  plain.horizon = 120'000;
  Simulation a(view, plain);
  a.inject_periodic(1'000, 30'000, 3, "pin", *sys.req, {4});
  a.run();

  Config with_empty_plan;
  with_empty_plan.horizon = 120'000;
  with_empty_plan.faults = FaultPlan{};  // explicit, still empty
  Simulation b(view, with_empty_plan);
  b.inject_periodic(1'000, 30'000, 3, "pin", *sys.req, {4});
  b.run();

  EXPECT_EQ(a.log().to_text(), b.log().to_text());
  EXPECT_EQ(a.events_dispatched(), b.events_dispatched());
  ASSERT_EQ(a.pe_stats().size(), b.pe_stats().size());
  for (const auto& [name, stats] : a.pe_stats()) {
    const auto& other = b.pe_stats().at(name);
    EXPECT_EQ(stats.busy_time, other.busy_time) << name;
    EXPECT_EQ(stats.steps, other.steps) << name;
    EXPECT_EQ(stats.dispatched, other.dispatched) << name;
  }
}

// ---------------------------------------------------------------------------
// Log round trip for the fault record kinds
// ---------------------------------------------------------------------------

TEST(FaultLog, NewRecordKindsRoundTripThroughText) {
  SimulationLog log;
  log.fault(100, "cpu2");
  log.retry(150, "ctrl", "Req", 2);
  log.watchdog_reset(200, "dsp2");
  log.migrate(250, "dsp1", "cpu2", "cpu1");
  log.fault_cleared(300, "cpu2");

  const std::string text = log.to_text();
  const SimulationLog parsed = SimulationLog::parse(text);
  ASSERT_EQ(parsed.size(), 5u);
  EXPECT_EQ(parsed.to_text(), text);
  const auto& r = parsed.records();
  EXPECT_EQ(r[0].kind, LogRecord::Kind::Fault);
  EXPECT_EQ(r[0].process, "cpu2");
  EXPECT_EQ(r[1].kind, LogRecord::Kind::Retry);
  EXPECT_EQ(r[1].cycles, 2);
  EXPECT_EQ(r[2].kind, LogRecord::Kind::Watchdog);
  EXPECT_EQ(r[3].kind, LogRecord::Kind::Migrate);
  EXPECT_EQ(r[3].peer, "cpu2");
  EXPECT_EQ(r[3].signal, "cpu1");
  EXPECT_EQ(r[4].kind, LogRecord::Kind::Clear);
}

// ---------------------------------------------------------------------------
// TUTMAC degraded-run scenario + reliability report
// ---------------------------------------------------------------------------

TEST(Reliability, TutmacDegradedRunShowsDowntimeAndRecovery) {
  // The documented scenario (see DESIGN.md): processor2 fails 5 ms into a
  // 20 ms TUTMAC run and recovers at 12 ms.
  tutmac::Options opt;
  opt.horizon = 20'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);

  Config config;
  config.horizon = opt.horizon;
  config.faults.pe_faults.push_back({"processor2", 5'000'000, 12'000'000});
  Simulation simulation(view, config);
  sys.inject_workload(simulation);
  simulation.run();

  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation.log());
  const auto& rel = report.reliability;

  ASSERT_TRUE(rel.present);
  ASSERT_EQ(rel.components.size(), 1u);
  EXPECT_EQ(rel.components[0].component, "processor2");
  EXPECT_EQ(rel.components[0].faults, 1u);
  EXPECT_EQ(rel.components[0].downtime, 7'000'000u);
  EXPECT_GE(rel.migrations, 2u);  // out at 5 ms, home at 12 ms
  EXPECT_GT(rel.delivered, 0u);
  EXPECT_GT(rel.worst_recovery_latency, 0u);

  const std::string text = report.to_text();
  EXPECT_NE(text.find("(c) Reliability"), std::string::npos);
  EXPECT_NE(text.find("processor2"), std::string::npos);

  // A healthy run of the same system reports no reliability section.
  Simulation healthy(view, Config{.horizon = opt.horizon});
  sys.inject_workload(healthy);
  healthy.run();
  const auto healthy_report = profiler::analyze(info, healthy.log());
  EXPECT_FALSE(healthy_report.reliability.present);
  EXPECT_EQ(healthy_report.to_text().find("(c) Reliability"),
            std::string::npos);
}
