// Tests for the compiled simulation core: EventQueue ordering vs the
// closure Kernel, CompiledModel lowering, byte-identical logs between the
// AST and bytecode simulation paths over the TUTMAC case study (with and
// without a fault plan), and BatchRunner determinism across thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/batch.hpp"
#include "sim/compiled.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::sim;

// ---------------------------------------------------------------------------
// EventQueue vs Kernel
// ---------------------------------------------------------------------------

namespace {

/// Replays the same schedule on a Kernel and an EventQueue and returns both
/// dispatch orders. Events are identified by their EventRec::a payload.
struct DualSchedule {
  Kernel kernel;
  EventQueue queue;
  std::vector<std::uint32_t> kernel_order;

  void at(Time t, std::uint32_t id) {
    kernel.schedule_at(t, [this, id]() { kernel_order.push_back(id); });
    queue.schedule_at(t, {EventRec::Kind::Inject, id});
  }

  std::vector<std::uint32_t> drain(Time horizon) {
    kernel.run(horizon);
    std::vector<std::uint32_t> queue_order;
    EventRec ev;
    while (queue.poll(horizon, ev)) queue_order.push_back(ev.a);
    EXPECT_EQ(kernel.now(), queue.now());
    EXPECT_EQ(kernel.dispatched(), queue.dispatched());
    return queue_order;
  }
};

}  // namespace

TEST(EventQueue, OrderingMatchesKernel) {
  DualSchedule d;
  d.at(50, 1);
  d.at(10, 2);
  d.at(50, 3);  // same time as 1: FIFO by schedule order
  d.at(10, 4);
  d.at(0, 5);   // due immediately (now == 0): bucket
  d.at(30, 6);
  const auto order = d.drain(100);
  EXPECT_EQ(order, d.kernel_order);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{5, 2, 4, 6, 1, 3}));
}

TEST(EventQueue, HeapBeforeBucketAtSameInstant) {
  // An event scheduled for time T before time advances (heap) must precede
  // one scheduled at T when now == T (bucket) — Kernel's seq order.
  Kernel kernel;
  EventQueue queue;
  std::vector<int> kernel_order;
  std::vector<int> queue_order;
  kernel.schedule_at(10, [&]() {
    kernel.schedule_at(10, [&]() { kernel_order.push_back(2); });
    kernel_order.push_back(1);
  });
  kernel.schedule_at(10, [&]() { kernel_order.push_back(3); });
  kernel.run(20);

  queue.schedule_at(10, {EventRec::Kind::Inject, 1});
  queue.schedule_at(10, {EventRec::Kind::Inject, 3});
  EventRec ev;
  while (queue.poll(20, ev)) {
    queue_order.push_back(static_cast<int>(ev.a));
    if (ev.a == 1) queue.schedule_at(10, {EventRec::Kind::Inject, 2});
  }
  EXPECT_EQ(kernel_order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(queue_order, kernel_order);
  EXPECT_EQ(queue.now(), kernel.now());
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue queue;
  queue.schedule_at(100, {EventRec::Kind::Inject, 0});
  EventRec ev;
  while (queue.poll(200, ev)) {
  }
  EXPECT_EQ(queue.now(), 200u);
#ifdef NDEBUG
  EXPECT_THROW(queue.schedule_at(50, {EventRec::Kind::Inject, 1}),
               std::logic_error);
#endif
}

// ---------------------------------------------------------------------------
// CompiledModel
// ---------------------------------------------------------------------------

namespace {

tutmac::System make_tutmac(Time horizon) {
  tutmac::Options opt;
  opt.horizon = horizon;
  return tutmac::build(opt);
}

FaultPlan stress_plan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.pe_faults.push_back({"processor2", 400'000, 900'000});
  plan.segment_faults.push_back({"hibisegment1", 600'000, 700'000});
  plan.bit_errors.push_back({"hibisegment2", 20'000});
  SignalFault sf;
  sf.kind = SignalFault::Kind::Lost;
  sf.process = "rca";
  sf.start = 1'000'000;
  sf.end = 1'200'000;
  plan.signal_faults.push_back(sf);
  plan.watchdog_timeout = 5'000'000;
  return plan;
}

}  // namespace

TEST(CompiledModel, LowersTutmacStructure) {
  const auto sys = make_tutmac(1'000'000);
  mapping::SystemView view(*sys.model);
  const auto model = CompiledModel::build(view);
  EXPECT_TRUE(model->has_machines());
  EXPECT_EQ(model->pes().size(), view.plat().instances().size());
  EXPECT_EQ(model->segs().size(), view.plat().segments().size());
  EXPECT_EQ(model->procs().size(), view.app().processes().size());
  EXPECT_GE(model->proc_index("rca"), 0);
  EXPECT_GE(model->pe_index("processor1"), 0);
  EXPECT_EQ(model->proc_index("nosuch"), -1);
  // Processes on distinct PEs have a route.
  const auto& crc = model->procs()[model->proc_index("crc")];
  const auto& rca = model->procs()[model->proc_index("rca")];
  ASSERT_NE(crc.home_pe, rca.home_pe);
  EXPECT_FALSE(model->route(rca.home_pe, crc.home_pe).empty());
}

// ---------------------------------------------------------------------------
// Byte-identical logs: AST path vs compiled path
// ---------------------------------------------------------------------------

namespace {

/// Runs the TUTMAC workload on the given path and returns the rendered log.
std::string run_ast(const tutmac::System& sys, const mapping::SystemView& view,
                    const Config& config) {
  Simulation simulation(view, config);
  sys.inject_workload(simulation);
  simulation.run();
  return simulation.log().to_text();
}

std::string run_compiled(const tutmac::System& sys,
                         std::shared_ptr<const CompiledModel> model,
                         const Config& config) {
  Simulation simulation(std::move(model), config);
  sys.inject_workload(simulation);
  simulation.run();
  return simulation.log().to_text();
}

}  // namespace

TEST(CompiledSim, TutmacLogByteIdentical) {
  const auto sys = make_tutmac(3'000'000);
  mapping::SystemView view(*sys.model);
  Config config;
  config.horizon = sys.options.horizon;

  const std::string ast_log = run_ast(sys, view, config);
  const std::string compiled_log =
      run_compiled(sys, CompiledModel::build(view), config);
  ASSERT_FALSE(ast_log.empty());
  EXPECT_EQ(ast_log, compiled_log);
}

TEST(CompiledSim, TutmacLogByteIdenticalUnderFaults) {
  const auto sys = make_tutmac(3'000'000);
  mapping::SystemView view(*sys.model);
  Config config;
  config.horizon = sys.options.horizon;
  config.faults = stress_plan();

  const std::string ast_log = run_ast(sys, view, config);
  const std::string compiled_log =
      run_compiled(sys, CompiledModel::build(view), config);
  ASSERT_FALSE(ast_log.empty());
  EXPECT_EQ(ast_log, compiled_log);
}

TEST(CompiledSim, StatsMatchAstPath) {
  const auto sys = make_tutmac(2'000'000);
  mapping::SystemView view(*sys.model);
  Config config;
  config.horizon = sys.options.horizon;

  Simulation ast_sim(view, config);
  sys.inject_workload(ast_sim);
  ast_sim.run();

  Simulation compiled_sim(CompiledModel::build(view), config);
  sys.inject_workload(compiled_sim);
  compiled_sim.run();

  EXPECT_EQ(ast_sim.events_dispatched(), compiled_sim.events_dispatched());
  ASSERT_EQ(ast_sim.pe_stats().size(), compiled_sim.pe_stats().size());
  for (const auto& [name, stats] : ast_sim.pe_stats()) {
    const PeStats& other = compiled_sim.pe_stats().at(name);
    EXPECT_EQ(stats.busy_time, other.busy_time) << name;
    EXPECT_EQ(stats.steps, other.steps) << name;
    EXPECT_EQ(stats.dispatched, other.dispatched) << name;
  }
  for (const auto& [name, stats] : ast_sim.segment_stats()) {
    const SegmentStats& other = compiled_sim.segment_stats().at(name);
    EXPECT_EQ(stats.grants, other.grants) << name;
    EXPECT_EQ(stats.busy_time, other.busy_time) << name;
  }
}

TEST(CompiledSim, InstanceAccessorRequiresAstPath) {
  const auto sys = make_tutmac(100'000);
  mapping::SystemView view(*sys.model);
  Simulation simulation(CompiledModel::build(view), Config{});
  EXPECT_THROW((void)simulation.instance("rca"), std::logic_error);
  EXPECT_THROW((void)simulation.instance("nosuch"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------------

namespace {

std::vector<BatchScenario> make_scenarios(const tutmac::System& sys,
                                          std::size_t count) {
  std::vector<BatchScenario> scenarios;
  for (std::size_t i = 0; i < count; ++i) {
    BatchScenario s;
    s.name = "seed" + std::to_string(i);
    s.config.horizon = sys.options.horizon;
    if (i % 2 == 1) {
      s.config.faults = stress_plan();
      s.config.faults.seed = i;
    }
    s.setup = [&sys](Simulation& sim) { sys.inject_workload(sim); };
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace

TEST(BatchRunner, DeterministicAcrossThreadCounts) {
  const auto sys = make_tutmac(1'500'000);
  mapping::SystemView view(*sys.model);
  const auto model = CompiledModel::build(view);
  const auto scenarios = make_scenarios(sys, 6);

  std::vector<std::vector<BatchResult>> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    BatchOptions options;
    options.threads = threads;
    runs.push_back(BatchRunner(model, options).run(scenarios));
  }
  for (std::size_t t = 1; t < runs.size(); ++t) {
    ASSERT_EQ(runs[t].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[t][i].name, runs[0][i].name);
      EXPECT_EQ(runs[t][i].log_hash, runs[0][i].log_hash) << i;
      EXPECT_EQ(runs[t][i].events, runs[0][i].events) << i;
      EXPECT_EQ(runs[t][i].records, runs[0][i].records) << i;
      EXPECT_TRUE(runs[t][i].error.empty()) << runs[t][i].error;
    }
  }
  // Faulted and fault-free scenarios produce distinct logs (the batch is
  // not trivially hashing empty or identical logs).
  EXPECT_NE(runs[0][0].log_hash, runs[0][1].log_hash);
}

TEST(BatchRunner, MatchesSingleSimulationLog) {
  const auto sys = make_tutmac(1'000'000);
  mapping::SystemView view(*sys.model);
  const auto model = CompiledModel::build(view);

  Config config;
  config.horizon = sys.options.horizon;
  const std::string direct = run_compiled(sys, model, config);

  BatchScenario scenario;
  scenario.name = "only";
  scenario.config = config;
  scenario.setup = [&sys](Simulation& sim) { sys.inject_workload(sim); };
  BatchOptions options;
  options.threads = 1;
  options.keep_logs = true;
  const auto results = BatchRunner(model, options).run({scenario});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].error.empty()) << results[0].error;
  EXPECT_EQ(results[0].log_text, direct);
  EXPECT_EQ(results[0].log_hash, BatchRunner::hash_text(direct));
}

TEST(BatchRunner, ReportsScenarioErrorsWithoutThrowing) {
  const auto sys = make_tutmac(100'000);
  mapping::SystemView view(*sys.model);
  const auto model = CompiledModel::build(view);

  BatchScenario bad;
  bad.name = "bad-plan";
  bad.config.horizon = 100'000;
  bad.config.faults.pe_faults.push_back({"nosuch_pe", 10, 20});
  const auto results = BatchRunner(model, BatchOptions{1, false}).run({bad});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].error.find("unknown component instance"),
            std::string::npos)
      << results[0].error;
  EXPECT_EQ(results[0].events, 0u);
}
