// Tests for the campaign engine: sweep grammar (lazy, pure scenario
// materialization; XML loader rule tags), reusable run contexts
// (Simulation::reset byte-identity vs fresh construction), the P² sketch,
// and the determinism contract — aggregates byte-identical across thread
// counts, shard splits and kill/resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/batch.hpp"
#include "sim/campaign.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::sim;

namespace {

/// One TUTMAC system + compiled image shared by every test (lowering once
/// keeps the suite fast; the image is immutable by contract).
const tutmac::System& shared_system() {
  static tutmac::System sys = [] {
    tutmac::Options opt;
    opt.horizon = 2'000'000;  // 2 ms keeps each scenario ~50 events
    return tutmac::build(opt);
  }();
  return sys;
}

std::shared_ptr<const CompiledModel> shared_image() {
  static std::shared_ptr<const CompiledModel> image = [] {
    mapping::SystemView view(*shared_system().model);
    return CompiledModel::build(view);
  }();
  return image;
}

/// Injects the standard workload scaled to the scenario's horizon and
/// slotPeriod axis (when present).
void setup_scenario(Simulation& sim, const Scenario& sc) {
  const tutmac::System& sys = shared_system();
  tutmac::Options o = sys.options;
  o.horizon = sim.config().horizon;
  o.slot_period = static_cast<Time>(
      sc.param("slotPeriod", static_cast<long>(o.slot_period)));
  sys.inject_workload(sim, o);
}

/// A small sweep with a fault plan: 12 scenarios exercising seeds, a free
/// parameter and plan selection.
CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.base.horizon = 2'000'000;
  spec.base_seed = 42;
  FaultPlan plan;
  plan.segment_faults.push_back({"hibisegment1", 200'000, 600'000});
  plan.bit_errors.push_back({"hibisegment2", 50'000});
  spec.plans.emplace_back("seg", std::move(plan));
  spec.axes.push_back({"seed", {0, 1, 2}});
  spec.axes.push_back({"slotPeriod", {50'000, 100'000}});
  spec.axes.push_back({"plan", {0, 1}});
  return spec;
}

CampaignRunner make_runner() { return CampaignRunner({shared_image()}, setup_scenario); }

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

// ---------------------------------------------------------------------------
// Reusable run contexts
// ---------------------------------------------------------------------------

TEST(SimulationReset, RerunIsByteIdenticalToFreshConstruction) {
  Config config;
  config.horizon = 2'000'000;
  Simulation fresh(shared_image(), config);
  setup_scenario(fresh, Scenario{});
  fresh.run();
  const std::string expected = fresh.log().to_text();

  // Same context, three consecutive runs: every rewind must reproduce the
  // fresh log byte for byte (including stats).
  Simulation reused(shared_image(), config);
  for (int round = 0; round < 3; ++round) {
    if (round > 0) reused.reset(config);
    setup_scenario(reused, Scenario{});
    reused.run();
    EXPECT_EQ(reused.log().to_text(), expected) << "round " << round;
    EXPECT_EQ(reused.events_dispatched(), fresh.events_dispatched());
    EXPECT_EQ(reused.pe_stats().at("processor1").busy_time,
              fresh.pe_stats().at("processor1").busy_time);
  }
}

TEST(SimulationReset, RerunWithFaultPlanIsByteIdentical) {
  Config config;
  config.horizon = 2'000'000;
  config.faults.segment_faults.push_back({"hibisegment1", 100'000, 900'000});
  config.faults.bit_errors.push_back({"hibisegment2", 200'000});
  config.faults.watchdog_timeout = 500'000;
  config.faults.seed = 7;

  Simulation fresh(shared_image(), config);
  setup_scenario(fresh, Scenario{});
  fresh.run();

  // Run something *different* first, then reset into the fault config: the
  // reset must fully clear fault state, timers and backoff bookkeeping.
  Config other;
  other.horizon = 1'000'000;
  Simulation reused(shared_image(), other);
  setup_scenario(reused, Scenario{});
  reused.run();
  reused.reset(config);
  setup_scenario(reused, Scenario{});
  reused.run();
  EXPECT_EQ(reused.log().to_text(), fresh.log().to_text());
}

TEST(SimulationReset, ConfigSwapChangesOutcomeDeterministically) {
  Config a;
  a.horizon = 1'000'000;
  Config b;
  b.horizon = 2'000'000;
  Simulation sim(shared_image(), a);
  setup_scenario(sim, Scenario{});
  sim.run();
  const std::string log_a = sim.log().to_text();
  sim.reset(b);
  setup_scenario(sim, Scenario{});
  sim.run();
  const std::string log_b = sim.log().to_text();
  EXPECT_NE(log_a, log_b);
  sim.reset(a);
  setup_scenario(sim, Scenario{});
  sim.run();
  EXPECT_EQ(sim.log().to_text(), log_a);
}

TEST(BatchRunner, ReusedContextsMatchPerRunConstructionHashes) {
  // The batch runner now reuses one context per worker; hashes must still
  // match a fresh Simulation per scenario.
  std::vector<BatchScenario> scenarios;
  for (int i = 0; i < 6; ++i) {
    BatchScenario s;
    s.name = "s" + std::to_string(i);
    s.config.horizon = 1'000'000 + 200'000 * static_cast<Time>(i);
    s.setup = [](Simulation& sim) { setup_scenario(sim, Scenario{}); };
    scenarios.push_back(std::move(s));
  }
  BatchOptions opt;
  opt.threads = 2;
  const auto results = BatchRunner(shared_image(), opt).run(scenarios);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    Simulation fresh(shared_image(), scenarios[i].config);
    setup_scenario(fresh, Scenario{});
    fresh.run();
    EXPECT_EQ(results[i].log_hash,
              BatchRunner::hash_text(fresh.log().to_text()))
        << scenarios[i].name;
    EXPECT_TRUE(results[i].log_text.empty());  // hash-and-release default
  }
}

TEST(BatchRunner, KeepLogsRetainsRenderedText) {
  BatchScenario s;
  s.name = "keep";
  s.config.horizon = 1'000'000;
  s.setup = [](Simulation& sim) { setup_scenario(sim, Scenario{}); };
  BatchOptions opt;
  opt.keep_logs = true;
  const auto results = BatchRunner(shared_image(), opt).run({s});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(BatchRunner::hash_text(results[0].log_text), results[0].log_hash);
  EXPECT_NE(results[0].log_text.find("# tut-simlog v1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sweep grammar
// ---------------------------------------------------------------------------

TEST(CampaignSpec, LazyExpansionIsPureInTheIndex) {
  const CampaignSpec spec = small_spec();
  ASSERT_EQ(spec.total(), 12u);
  // Materializing out of order, repeatedly, yields identical scenarios.
  for (const std::uint64_t i : {11u, 0u, 5u, 11u, 3u, 0u}) {
    const Scenario a = spec.scenario(i);
    const Scenario b = spec.scenario(i);
    EXPECT_EQ(a.index, i);
    EXPECT_EQ(a.config.horizon, b.config.horizon);
    EXPECT_EQ(a.config.faults.seed, b.config.faults.seed);
    EXPECT_EQ(a.config.faults.segment_faults.size(),
              b.config.faults.segment_faults.size());
    EXPECT_EQ(a.param("slotPeriod", -1), b.param("slotPeriod", -1));
  }
}

TEST(CampaignSpec, CartesianOrderIsLastAxisFastest) {
  const CampaignSpec spec = small_spec();
  // Axes: seed{0,1,2} x slotPeriod{50k,100k} x plan{0,1} — plan toggles
  // fastest, then slotPeriod, then seed.
  EXPECT_TRUE(spec.scenario(0).config.faults.empty());
  EXPECT_FALSE(spec.scenario(1).config.faults.empty());
  EXPECT_EQ(spec.scenario(0).param("slotPeriod", -1), 50'000);
  EXPECT_EQ(spec.scenario(2).param("slotPeriod", -1), 100'000);
  // Scenario 4 starts the seed=1 block; its per-run seed differs from the
  // seed=0 block's even at the same index offset.
  EXPECT_NE(spec.scenario(0).config.faults.seed,
            spec.scenario(4).config.faults.seed);
}

TEST(CampaignSpec, PerScenarioSeedsDecorrelateEqualAxisValues) {
  const CampaignSpec spec = small_spec();
  // Scenarios 1 and 3 share the seed-axis value (0) and the plan (seg) but
  // differ in index — their derived fault seeds must differ.
  EXPECT_NE(spec.scenario(1).config.faults.seed,
            spec.scenario(3).config.faults.seed);
}

TEST(CampaignSpec, ZipModeReadsColumns) {
  CampaignSpec spec;
  spec.mode = CampaignSpec::Mode::Zip;
  spec.axes.push_back({"seed", {10, 20, 30}});
  spec.axes.push_back({"horizon", {1'000'000, 2'000'000, 3'000'000}});
  ASSERT_TRUE(spec.validate().empty());
  ASSERT_EQ(spec.total(), 3u);
  EXPECT_EQ(spec.scenario(1).config.horizon, 2'000'000u);
  EXPECT_EQ(spec.scenario(2).config.horizon, 3'000'000u);
}

TEST(CampaignSpec, ValidateTagsDefects) {
  CampaignSpec spec;
  const auto joined = [](const std::vector<std::string>& v) {
    std::string all;
    for (const auto& s : v) all += s + "\n";
    return all;
  };
  EXPECT_NE(joined(spec.validate()).find("[campaign.sweep.empty]"),
            std::string::npos);

  spec.axes.push_back({"seed", {1}});
  spec.axes.push_back({"seed", {2}});
  EXPECT_NE(joined(spec.validate()).find("[campaign.axis.duplicate]"),
            std::string::npos);

  spec.axes.clear();
  spec.axes.push_back({"plan", {3}});
  EXPECT_NE(joined(spec.validate()).find("[campaign.ref.unknown]"),
            std::string::npos);

  spec.axes.clear();
  spec.mode = CampaignSpec::Mode::Zip;
  spec.axes.push_back({"seed", {1, 2}});
  spec.axes.push_back({"horizon", {1'000'000}});
  EXPECT_NE(joined(spec.validate()).find("[campaign.zip.length]"),
            std::string::npos);
}

TEST(CampaignSpec, XmlLoaderRoundTrip) {
  const std::string xml = R"(<?xml version="1.0"?>
<tut:campaign name="sweep" mode="cartesian" seed="9" horizon="3000000">
  <axis name="seed" count="4"/>
  <axis name="slotPeriod" values="50000 100000"/>
  <axis name="rxPeriod" from="500000" step="250000" count="3"/>
</tut:campaign>)";
  const CampaignSpec spec = CampaignSpec::from_xml_text(xml);
  EXPECT_EQ(spec.name, "sweep");
  EXPECT_EQ(spec.base_seed, 9u);
  EXPECT_EQ(spec.base.horizon, 3'000'000u);
  ASSERT_EQ(spec.axes.size(), 3u);
  EXPECT_EQ(spec.total(), 4u * 2u * 3u);
  EXPECT_EQ(spec.axes[0].values, (std::vector<long>{0, 1, 2, 3}));
  EXPECT_EQ(spec.axes[2].values,
            (std::vector<long>{500'000, 750'000, 1'000'000}));
}

TEST(CampaignSpec, XmlLoaderResolvesPlansAndMappings) {
  const std::string xml = R"(<tut:campaign name="m">
  <plan name="burst" file="burst.xml"/>
  <axis name="seed" count="2"/>
  <axis name="plan" values="none burst"/>
  <axis name="mapping" values="paper singlePe"/>
</tut:campaign>)";
  FaultPlan burst;
  burst.segment_faults.push_back({"hibisegment1", 10, 20});
  const std::string burst_xml = burst.to_xml_text();
  const CampaignSpec spec = CampaignSpec::from_xml_text(
      xml, [&](const std::string& file) {
        EXPECT_EQ(file, "burst.xml");
        return burst_xml;
      });
  ASSERT_EQ(spec.plans.size(), 2u);
  EXPECT_EQ(spec.plans[1].first, "burst");
  EXPECT_EQ(spec.mapping_names,
            (std::vector<std::string>{"paper", "singlePe"}));
  // plan axis carries indices into plans; scenario 1 picks "burst".
  EXPECT_FALSE(spec.scenario(2).config.faults.empty());
  EXPECT_EQ(spec.scenario(1).image, 1u);
}

TEST(CampaignSpec, XmlLoaderTagsErrors) {
  const auto expect_tag = [](const std::string& xml, const char* tag) {
    try {
      CampaignSpec::from_xml_text(xml);
      FAIL() << "expected throw with " << tag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(tag), std::string::npos)
          << e.what();
    }
  };
  expect_tag("<tut:campaign/>", "[campaign.sweep.empty]");
  expect_tag(R"(<tut:campaign mode="diagonal"><axis name="seed" count="1"/></tut:campaign>)",
             "[campaign.mode.unknown]");
  expect_tag(R"(<tut:campaign><axis name="plan" values="ghost"/></tut:campaign>)",
             "[campaign.ref.unknown]");
  expect_tag(R"(<tut:campaign><axis name="seed" values="x"/></tut:campaign>)",
             "[campaign.axis.malformed]");
  expect_tag(R"(<tut:campaign><bogus/></tut:campaign>)",
             "[campaign.element.unknown]");
  expect_tag(R"(<tut:campaign><plan name="p" file="f.xml"/></tut:campaign>)",
             "[campaign.plan.unreadable]");
}

// ---------------------------------------------------------------------------
// P² sketch
// ---------------------------------------------------------------------------

TEST(P2Quantile, TracksQuantilesOfAKnownStream) {
  P2Quantile p50(0.5), p90(0.9);
  // 1..1000 in a scrambled but deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const double v = 1 + (i * 613) % 1000;
    p50.add(v);
    p90.add(v);
  }
  EXPECT_NEAR(p50.value(), 500.0, 25.0);
  EXPECT_NEAR(p90.value(), 900.0, 25.0);
  EXPECT_EQ(p50.count(), 1000u);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.value(), 0.0);
  q.add(7);
  EXPECT_EQ(q.value(), 7.0);
  q.add(3);
  q.add(11);
  EXPECT_EQ(q.value(), 7.0);  // median of {3, 7, 11}
}

TEST(P2Quantile, SerializeRoundTripsExactly) {
  P2Quantile q(0.9);
  for (int i = 0; i < 137; ++i) q.add(i * 0.37);
  std::string bytes;
  q.serialize(bytes);
  std::size_t cursor = 0;
  const P2Quantile back = P2Quantile::deserialize(bytes, cursor);
  EXPECT_EQ(cursor, bytes.size());
  std::string again;
  back.serialize(again);
  EXPECT_EQ(bytes, again);
  EXPECT_EQ(back.value(), q.value());
}

// ---------------------------------------------------------------------------
// Determinism matrix
// ---------------------------------------------------------------------------

TEST(Campaign, AggregateInvariantAcrossThreadCounts) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    CampaignOptions opt;
    opt.threads = threads;
    const CampaignResult r = runner.run(spec, opt);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.aggregate.scenarios, spec.total());
    EXPECT_EQ(r.aggregate.errors, 0u);
    const std::string bytes = r.aggregate.serialize();
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
  }
}

TEST(Campaign, ShardedMergeMatchesUnshardedByteForByte) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();

  const std::string whole = temp_path("tut_campaign_whole.bin");
  const std::string p0 = temp_path("tut_campaign_p0.bin");
  const std::string p1 = temp_path("tut_campaign_p1.bin");

  CampaignOptions opt;
  opt.threads = 2;
  opt.samples_path = whole;
  const CampaignResult single = runner.run(spec, opt);

  opt.samples_path = p0;
  opt.shard = {0, 2};
  const CampaignResult s0 = runner.run(spec, opt);
  opt.samples_path = p1;
  opt.shard = {1, 2};
  const CampaignResult s1 = runner.run(spec, opt);
  EXPECT_EQ(s0.end, s1.first);
  EXPECT_EQ(s0.aggregate.scenarios + s1.aggregate.scenarios, spec.total());

  const CampaignResult merged = merge_campaign_parts({p0, p1});
  EXPECT_EQ(merged.aggregate.serialize(), single.aggregate.serialize());
  // And merging the single-process part file reproduces it too.
  const CampaignResult remerged = merge_campaign_parts({whole});
  EXPECT_EQ(remerged.aggregate.serialize(), single.aggregate.serialize());

  std::filesystem::remove(whole);
  std::filesystem::remove(p0);
  std::filesystem::remove(p1);
}

TEST(Campaign, KillAtCheckpointThenResumeMatchesUninterrupted) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();

  CampaignOptions opt;
  opt.threads = 2;
  const CampaignResult uninterrupted = runner.run(spec, opt);

  const std::string ck = temp_path("tut_campaign_ck.bin");
  const std::string parts = temp_path("tut_campaign_ck_parts.bin");
  std::filesystem::remove(ck);

  CampaignOptions killed;
  killed.threads = 2;
  killed.checkpoint_path = ck;
  killed.checkpoint_every = 3;
  killed.samples_path = parts;
  killed.stop_after = 7;  // dies mid-campaign, past two checkpoints
  const CampaignResult partial = runner.run(spec, killed);
  EXPECT_FALSE(partial.completed);
  EXPECT_EQ(partial.next, 7u);

  CampaignOptions resumed = killed;
  resumed.stop_after = 0;
  resumed.resume = true;
  const CampaignResult finished = runner.run(spec, resumed);
  EXPECT_TRUE(finished.completed);
  EXPECT_EQ(finished.aggregate.serialize(),
            uninterrupted.aggregate.serialize());

  // The part file survived the kill + resume with the full in-order stream.
  const CampaignResult merged = merge_campaign_parts({parts});
  EXPECT_EQ(merged.aggregate.serialize(), uninterrupted.aggregate.serialize());

  std::filesystem::remove(ck);
  std::filesystem::remove(parts);
}

TEST(Campaign, CheckpointFromDifferentCampaignIsRejected) {
  const CampaignRunner runner = make_runner();
  const std::string ck = temp_path("tut_campaign_mismatch.bin");

  CampaignOptions opt;
  opt.threads = 1;
  opt.checkpoint_path = ck;
  runner.run(small_spec(), opt);

  CampaignSpec other = small_spec();
  other.base_seed = 99;  // different campaign → different fingerprint
  opt.resume = true;
  try {
    runner.run(other, opt);
    FAIL() << "expected checkpoint mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[campaign.checkpoint.mismatch]"),
              std::string::npos);
  }
  std::filesystem::remove(ck);
}

TEST(Campaign, MergeRejectsGapsAndForeignParts) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();
  const std::string p1 = temp_path("tut_campaign_gap.bin");

  CampaignOptions opt;
  opt.threads = 1;
  opt.shard = {1, 2};
  opt.samples_path = p1;
  runner.run(spec, opt);
  try {
    merge_campaign_parts({p1});  // shard 0 missing
    FAIL() << "expected gap";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[campaign.part.gap]"),
              std::string::npos);
  }
  std::filesystem::remove(p1);
}

TEST(Campaign, ErrorScenariosDigestDeterministically) {
  // A plan referencing a nonexistent segment makes those scenarios fail at
  // reset; the failure must be aggregated, not thrown, and stay invariant
  // across thread counts.
  CampaignSpec spec;
  spec.base.horizon = 1'000'000;
  FaultPlan bad;
  bad.segment_faults.push_back({"no_such_segment", 10, 20});
  spec.plans.emplace_back("bad", std::move(bad));
  spec.axes.push_back({"seed", {0, 1}});
  spec.axes.push_back({"plan", {0, 1}});
  const CampaignRunner runner = make_runner();
  CampaignOptions opt;
  opt.threads = 1;
  const CampaignResult a = runner.run(spec, opt);
  opt.threads = 4;
  const CampaignResult b = runner.run(spec, opt);
  EXPECT_EQ(a.aggregate.errors, 2u);
  EXPECT_EQ(a.aggregate.scenarios, 4u);
  EXPECT_EQ(a.aggregate.serialize(), b.aggregate.serialize());
}

TEST(Campaign, SummariesStreamInIndexOrder) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();
  std::vector<std::uint64_t> order;
  CampaignOptions opt;
  opt.threads = 4;
  opt.on_summary = [&order](const ScenarioSummary& s) {
    order.push_back(s.index);
  };
  runner.run(spec, opt);
  ASSERT_EQ(order.size(), spec.total());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Campaign, ResumeRejectsTruncatedPartFile) {
  // A kill can truncate the shard part file anywhere — mid-summary, to less
  // than the checkpoint prefix, or to zero bytes. Resume must classify each
  // as [campaign.part.truncated] instead of decoding garbage (or calling the
  // file foreign with [campaign.part.mismatch]).
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();
  const std::string ck = temp_path("tut_campaign_trunc_ck.bin");
  const std::string parts = temp_path("tut_campaign_trunc_parts.bin");
  std::filesystem::remove(ck);

  CampaignOptions opt;
  opt.threads = 2;
  opt.checkpoint_path = ck;
  opt.checkpoint_every = 3;
  opt.samples_path = parts;
  opt.stop_after = 7;
  const CampaignResult partial = runner.run(spec, opt);
  EXPECT_FALSE(partial.completed);

  opt.stop_after = 0;
  opt.resume = true;
  constexpr std::uintmax_t kHeader = 32;   // magic + fingerprint + range
  constexpr std::uintmax_t kSummary = 96;  // 12 u64 words per scenario
  const auto expect_truncated = [&](std::uintmax_t size) {
    std::filesystem::resize_file(parts, size);
    try {
      runner.run(spec, opt);
      FAIL() << "resumed from a " << size << "-byte part file";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("[campaign.part.truncated]"),
                std::string::npos)
          << e.what();
    }
  };
  expect_truncated(kHeader + kSummary + kSummary / 2);  // ends mid-summary
  expect_truncated(kHeader + kSummary);  // whole, but < checkpoint prefix
  expect_truncated(0);                   // zero-length (kill before header)

  std::filesystem::remove(ck);
  std::filesystem::remove(parts);
}

TEST(Campaign, MergeRejectsTruncatedParts) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();
  const std::string part = temp_path("tut_campaign_trunc_merge.bin");

  CampaignOptions opt;
  opt.threads = 2;
  opt.samples_path = part;
  runner.run(spec, opt);

  constexpr std::uintmax_t kHeader = 32;
  constexpr std::uintmax_t kSummary = 96;
  const auto expect_truncated = [&](std::uintmax_t size) {
    std::filesystem::resize_file(part, size);
    try {
      merge_campaign_parts({part});
      FAIL() << "merged a " << size << "-byte part file";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("[campaign.part.truncated]"),
                std::string::npos)
          << e.what();
    }
  };
  // One whole summary short of the declared range, then mid-summary, then
  // shorter than the header itself.
  expect_truncated(kHeader + (spec.total() - 1) * kSummary);
  expect_truncated(kHeader + kSummary / 2);
  expect_truncated(kHeader / 2);

  std::filesystem::remove(part);
}

TEST(Campaign, CheckpointWriteFailureLeavesNoTmpFile) {
  // A directory squatting on the checkpoint path makes the atomic
  // tmp+rename fail; the run must surface [campaign.checkpoint.io] and must
  // not leave the orphaned .tmp behind (it looks like recoverable state).
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner = make_runner();
  const std::string ck = temp_path("tut_campaign_ckdir");
  std::filesystem::remove_all(ck);
  std::filesystem::create_directory(ck);

  CampaignOptions opt;
  opt.threads = 1;
  opt.checkpoint_path = ck;
  opt.checkpoint_every = 1;
  try {
    runner.run(spec, opt);
    FAIL() << "checkpointed onto a directory";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[campaign.checkpoint.io]"),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(std::filesystem::exists(ck + ".tmp"))
      << "failed checkpoint left its tmp file behind";
  std::filesystem::remove_all(ck);
}

TEST(Campaign, LogDigestIsNameBasedNotInternIdBased) {
  // Two logs with the same rendered text but different intern orders (the
  // reused-context situation) must digest equal.
  SimulationLog a;
  a.intern_name("zebra");  // perturb the intern table only
  a.run(10, "p1", 5, 3);
  SimulationLog b;
  b.run(10, "p1", 5, 3);
  EXPECT_EQ(log_digest(a), log_digest(b));
  EXPECT_EQ(log_digest(a), BatchRunner::hash_text(a.to_text()));
}
