// Tests for the diagram renderers (Figures 3-8 as DOT / text).
#include <gtest/gtest.h>

#include "diagram/diagram.hpp"
#include "fixtures.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::diagram;

namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

bool looks_like_dot(const std::string& text) {
  return text.rfind("digraph ", 0) == 0 && text.back() == '\n' &&
         contains(text, "}");
}

}  // namespace

TEST(ClassDiagram, ShowsStereotypesCompositionAndActivity) {
  test::MiniSystem sys;
  const std::string dot = class_diagram_dot(sys.model);
  EXPECT_TRUE(looks_like_dot(dot));
  EXPECT_TRUE(contains(dot, "\xC2\xAB" "Application" "\xC2\xBB"));
  EXPECT_TRUE(contains(dot, "\xC2\xAB" "ApplicationComponent" "\xC2\xBB"));
  EXPECT_TRUE(contains(dot, "Controller"));
  EXPECT_TRUE(contains(dot, "(active)"));
  EXPECT_TRUE(contains(dot, "arrowhead=diamond"));  // composition edges
}

TEST(ClassDiagram, ShowsGeneralization) {
  test::MiniSystem sys;
  auto& special = sys.model.create_class("FastController", nullptr, true);
  special.set_general(sys.ctrl_comp);
  const std::string dot = class_diagram_dot(sys.model);
  EXPECT_TRUE(contains(dot, "arrowhead=onormal"));
}

TEST(CompositeStructure, ShowsPartsPortsAndConnectors) {
  test::MiniSystem sys;
  const std::string dot = composite_structure_dot(*sys.app);
  EXPECT_TRUE(looks_like_dot(dot));
  EXPECT_TRUE(contains(dot, "ctrl : Controller"));
  EXPECT_TRUE(contains(dot, "dsp1 : DspFilter"));
  EXPECT_TRUE(contains(dot, "shape=diamond"));  // boundary port "pin"
  EXPECT_TRUE(contains(dot, "pin"));
  EXPECT_TRUE(contains(dot, "taillabel"));
  EXPECT_TRUE(contains(dot, "dir=none"));
}

TEST(GroupingDiagram, ClustersByGroup) {
  test::MiniSystem sys;
  const std::string dot = grouping_dot(sys.model);
  EXPECT_TRUE(looks_like_dot(dot));
  EXPECT_TRUE(contains(dot, "subgraph cluster_0"));
  EXPECT_TRUE(contains(dot, "g_ctrl (general)"));
  EXPECT_TRUE(contains(dot, "g_hw (hardware)"));
}

TEST(GroupingDiagram, UngroupedProcessesAreDashed) {
  test::MiniSystem sys;
  auto& lone = sys.model.add_part(*sys.app, "lone", *sys.ctrl_comp);
  lone.apply(*sys.prof.application_process);
  const std::string dot = grouping_dot(sys.model);
  EXPECT_TRUE(contains(dot, "style=dashed"));
}

TEST(PlatformDiagram, ShowsInstancesSegmentsWrappersBridges) {
  test::MiniSystem sys;
  const std::string dot = platform_dot(sys.model);
  EXPECT_TRUE(looks_like_dot(dot));
  EXPECT_TRUE(contains(dot, "cpu1 : NiosCpu"));
  EXPECT_TRUE(contains(dot, "ID=1"));
  EXPECT_TRUE(contains(dot, "shape=box3d"));
  EXPECT_TRUE(contains(dot, "32 bit, priority"));
  EXPECT_TRUE(contains(dot, "addr=0"));
  EXPECT_TRUE(contains(dot, "style=bold"));  // bridge links
  EXPECT_TRUE(contains(dot, "\xC2\xAB" "HIBIWrapper" "\xC2\xBB"));
}

TEST(MappingDiagram, ShowsMappingEdges) {
  test::MiniSystem sys;
  const std::string dot = mapping_dot(sys.model);
  EXPECT_TRUE(looks_like_dot(dot));
  EXPECT_TRUE(contains(dot, "g_ctrl"));
  EXPECT_TRUE(contains(dot, "\xC2\xAB" "Mapping" "\xC2\xBB"));
  EXPECT_TRUE(contains(dot, "(fixed)"));
  EXPECT_TRUE(contains(dot, "style=dashed"));
}

TEST(ProfileHierarchy, ListsAllStereotypes) {
  test::MiniSystem sys;
  const std::string text = profile_hierarchy_text(sys.prof);
  EXPECT_TRUE(contains(text, "Profile TUT-Profile"));
  for (const char* name :
       {"Application", "ApplicationComponent", "ApplicationProcess",
        "ProcessGroup", "ProcessGrouping", "Platform", "Component",
        "ComponentInstance", "CommunicationWrapper", "CommunicationSegment",
        "Mapping", "HIBIWrapper", "HIBISegment"}) {
    EXPECT_TRUE(contains(text, std::string("<<") + name + ">>")) << name;
  }
  EXPECT_TRUE(contains(text, "specializes <<CommunicationSegment>>"));
  EXPECT_TRUE(contains(text, "extends Dependency"));
}

TEST(StereotypeTable, RendersTagsLikeTables2And3) {
  test::MiniSystem sys;
  const std::string text = stereotype_table_text(*sys.prof.application_process);
  EXPECT_TRUE(contains(text, "Stereotype <<ApplicationProcess>>"));
  EXPECT_TRUE(contains(text, "Priority : integer"));
  EXPECT_TRUE(contains(text, "ProcessType : enum {general/dsp/hardware}"));
  const std::string inst = stereotype_table_text(*sys.prof.component_instance);
  EXPECT_TRUE(contains(inst, "ID : integer [required]"));
}

TEST(DiagramsTutmac, AllFiguresRender) {
  tutmac::System sys = tutmac::build();
  // Figure 4.
  const std::string fig4 = class_diagram_dot(*sys.model);
  EXPECT_TRUE(contains(fig4, "Tutmac_Protocol"));
  EXPECT_TRUE(contains(fig4, "RadioChannelAccess"));
  // Figure 5.
  const std::string fig5 = composite_structure_dot(*sys.app);
  EXPECT_TRUE(contains(fig5, "rca : RadioChannelAccess"));
  EXPECT_TRUE(contains(fig5, "ui : UserInterface"));
  EXPECT_TRUE(contains(fig5, "pphy"));
  // Figure 6.
  const std::string fig6 = grouping_dot(*sys.model);
  EXPECT_TRUE(contains(fig6, "group1"));
  EXPECT_TRUE(contains(fig6, "group4 (hardware)"));
  // Figure 7.
  const std::string fig7 = platform_dot(*sys.model);
  EXPECT_TRUE(contains(fig7, "processor1 : NiosProcessor"));
  EXPECT_TRUE(contains(fig7, "hibisegment1"));
  EXPECT_TRUE(contains(fig7, "bridge"));
  // Figure 8.
  const std::string fig8 = mapping_dot(*sys.model);
  EXPECT_TRUE(contains(fig8, "group1"));
  EXPECT_TRUE(contains(fig8, "accelerator1"));
}

namespace {

/// Minimal DOT well-formedness: balanced braces/brackets and an even number
/// of unescaped quotes (enough to catch label-escaping regressions).
bool dot_well_formed(const std::string& dot) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < dot.size(); ++i) {
    const char c = dot[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

}  // namespace

TEST(DotWellFormed, AllTutmacFiguresBalanceQuotesAndBraces) {
  tutmac::System sys = tutmac::build();
  EXPECT_TRUE(dot_well_formed(class_diagram_dot(*sys.model)));
  EXPECT_TRUE(dot_well_formed(composite_structure_dot(*sys.app)));
  EXPECT_TRUE(dot_well_formed(grouping_dot(*sys.model)));
  EXPECT_TRUE(dot_well_formed(platform_dot(*sys.model)));
  EXPECT_TRUE(dot_well_formed(mapping_dot(*sys.model)));
}

TEST(DotWellFormed, HostileNamesAreEscaped) {
  // Names containing DOT metacharacters must not break the output.
  uml::Model model{"hostile \"quoted\" model"};
  auto prof = tut::profile::install(model);
  auto& cls = model.create_class("Weird \"Name\" {x}", nullptr, true);
  cls.apply(*prof.application_component);
  const std::string dot = class_diagram_dot(model);
  EXPECT_TRUE(dot_well_formed(dot)) << dot;
}
