// Tests for the static analysis subsystem: the diagnostics engine
// (Report/Baseline/SourceMap) and one positive plus one clean-negative case
// per analysis rule, seeded as mutations of the MiniSystem fixture.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/source_map.hpp"
#include "fixtures.hpp"
#include "uml/serialize.hpp"

using namespace tut;
using analysis::Severity;

namespace {

bool has_rule(const analysis::Report& r, std::string_view rule,
              std::string_view element_substr = {}) {
  for (const analysis::Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule &&
        (element_substr.empty() ||
         d.element.find(element_substr) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

const analysis::Diagnostic* find_rule(const analysis::Report& r,
                                      std::string_view rule) {
  for (const analysis::Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

/// The report for an unmodified MiniSystem — the clean-negative side of
/// every rule test below.
const analysis::Report& clean_report() {
  static const analysis::Report report = [] {
    test::MiniSystem sys;
    return analysis::analyze(sys.model);
  }();
  return report;
}

}  // namespace

// ---------------------------------------------------------------------------
// The fixture's own findings (the clean baseline everything else diffs
// against): one intentionally dangling port, one single-accelerator info.
// ---------------------------------------------------------------------------

TEST(Analysis, MiniSystemBaselineFindings) {
  const analysis::Report& r = clean_report();
  EXPECT_EQ(r.error_count(), 0u) << r.to_text();
  EXPECT_EQ(r.warning_count(), 1u) << r.to_text();
  EXPECT_TRUE(has_rule(r, "flow.port.unbound", "dsp2"));
  EXPECT_TRUE(has_rule(r, "map.failover.infeasible", "acc"));
  EXPECT_EQ(find_rule(r, "map.failover.infeasible")->severity, Severity::Info);
}

TEST(Analysis, RuleCatalogIsSortedAndUnique) {
  const auto& catalog = analysis::rule_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].id, catalog[i].id);
  }
  for (const analysis::RuleInfo& rule : catalog) {
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
}

// ---------------------------------------------------------------------------
// EFSM bytecode family
// ---------------------------------------------------------------------------

TEST(AnalysisEfsm, UnreachableState) {
  test::MiniSystem sys;
  auto& sm = *sys.ctrl_comp->behavior();
  sys.model.add_state(sm, "Orphan");
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.state.unreachable", "Orphan")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.state.unreachable"));
}

TEST(AnalysisEfsm, DeadTransitionShadowedByEarlier) {
  test::MiniSystem sys;
  auto& sm = *sys.ctrl_comp->behavior();
  // c_idle already has an unguarded "tick" transition; a second one on the
  // same timer can never fire.
  auto& idle = *sm.states()[0];
  auto& tx = *sm.states()[1];
  sys.model.add_timer_transition(sm, idle, tx, "tick");
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.transition.dead")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.transition.dead"));
}

TEST(AnalysisEfsm, OverlappingGuardedTriggers) {
  test::MiniSystem sys;
  auto& sm = *sys.dsp_comp->behavior();
  auto& idle = *sm.states()[0];
  // Two transitions on the same signal+port with the same non-constant
  // guard: the second can never win the dispatch race.
  sys.model.add_transition(sm, idle, idle, *sys.rsp, "in").set_guard("n > 0");
  sys.model.add_transition(sm, idle, idle, *sys.rsp, "in").set_guard("n > 0");
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.trigger.overlap")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.trigger.overlap"));
}

TEST(AnalysisEfsm, ConstantFalseGuard) {
  test::MiniSystem sys;
  auto& sm = *sys.ctrl_comp->behavior();
  auto& idle = *sm.states()[0];
  auto& tx = *sm.states()[1];
  sys.model.add_transition(sm, idle, tx, *sys.rsp, "out").set_guard("1 > 2");
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.guard.false")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "efsm.guard.false"));
}

TEST(AnalysisEfsm, UndefinedIdentifierInGuard) {
  test::MiniSystem sys;
  auto& sm = *sys.crc_comp->behavior();
  auto& idle = *sm.states()[0];
  sys.model.add_transition(sm, idle, idle, *sys.rsp, "in")
      .set_guard("bogus > 0");
  const auto r = analysis::analyze(sys.model);
  const analysis::Diagnostic* d = find_rule(r, "efsm.var.undefined");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_NE(d->message.find("bogus"), std::string::npos);
  EXPECT_FALSE(has_rule(clean_report(), "efsm.var.undefined"));
}

TEST(AnalysisEfsm, ReadBeforeWrite) {
  test::MiniSystem sys;
  // A standalone machine: 'm' is created by an Assign on the Req path, but
  // the Rsp self-loop can read it before that path ever ran.
  auto& cls = sys.model.create_class("Rbw", nullptr, /*active=*/true);
  auto& sm = sys.model.create_behavior(cls);
  auto& a = sys.model.add_state(sm, "A", true);
  auto& b = sys.model.add_state(sm, "B");
  sys.model.add_transition(sm, a, b, *sys.req)
      .add_effect(uml::Action::assign("m", "1"));
  sys.model.add_transition(sm, a, a, *sys.rsp)
      .add_effect(uml::Action::compute("m + 1"));
  const auto r = analysis::analyze(sys.model);
  const analysis::Diagnostic* d = find_rule(r, "efsm.var.read_before_write");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_NE(d->message.find("'m'"), std::string::npos);
  EXPECT_FALSE(has_rule(clean_report(), "efsm.var.read_before_write"));
}

TEST(AnalysisEfsm, DeclaredVariableIsNotReadBeforeWrite) {
  test::MiniSystem sys;
  auto& cls = sys.model.create_class("Decl", nullptr, /*active=*/true);
  auto& sm = sys.model.create_behavior(cls);
  sm.declare_variable("m", 0);
  auto& a = sys.model.add_state(sm, "A", true);
  sys.model.add_transition(sm, a, a, *sys.rsp)
      .add_effect(uml::Action::compute("m + 1"));
  const auto r = analysis::analyze(sys.model);
  EXPECT_FALSE(has_rule(r, "efsm.var.read_before_write")) << r.to_text();
}

TEST(AnalysisEfsm, SignalNeverSent) {
  test::MiniSystem sys;
  auto& ghost = sys.model.create_signal("Ghost");
  auto& sm = *sys.crc_comp->behavior();
  auto& idle = *sm.states()[0];
  sys.model.add_transition(sm, idle, idle, ghost);
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "efsm.signal.never_sent")) << r.to_text();
  // Req/Rsp are sent (or injectable): no false positives on the clean model.
  EXPECT_FALSE(has_rule(clean_report(), "efsm.signal.never_sent"));
}

TEST(AnalysisEfsm, MalformedExpression) {
  test::MiniSystem sys;
  auto& sm = *sys.crc_comp->behavior();
  auto& idle = *sm.states()[0];
  sys.model.add_transition(sm, idle, idle, *sys.rsp, "in").set_guard("1 +");
  const auto r = analysis::analyze(sys.model);
  const analysis::Diagnostic* d = find_rule(r, "efsm.expr.malformed");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_FALSE(has_rule(clean_report(), "efsm.expr.malformed"));
}

// ---------------------------------------------------------------------------
// Signal-flow family
// ---------------------------------------------------------------------------

TEST(AnalysisFlow, UnboundPortDetectedAndFixable) {
  // The fixture's dsp2 sends through its dangling "hw" port (the positive
  // case lives in the clean fixture); wiring it to crc removes the finding.
  EXPECT_TRUE(has_rule(clean_report(), "flow.port.unbound", "dsp2"));

  test::MiniSystem sys;
  sys.model.connect(*sys.app, "dsp2", "hw", "crc", "in");
  const auto r = analysis::analyze(sys.model);
  EXPECT_FALSE(has_rule(r, "flow.port.unbound")) << r.to_text();
}

TEST(AnalysisFlow, ConnectorTypeMismatch) {
  test::MiniSystem sys;
  // ctrl pushes Rsp through "out"; the destination (dsp "in") only provides
  // Req.
  auto& sm = *sys.ctrl_comp->behavior();
  auto& tx = *sm.states()[1];
  sys.model.add_timer_transition(sm, tx, tx, "t2")
      .add_effect(uml::Action::send("out", *sys.rsp, {"1"}));
  const auto r = analysis::analyze(sys.model);
  const analysis::Diagnostic* d = find_rule(r, "flow.connector.type");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_FALSE(has_rule(clean_report(), "flow.connector.type"));
}

TEST(AnalysisFlow, RoutedSignalIgnoredByReceiver) {
  test::MiniSystem sys;
  auto& extra = sys.model.create_signal("Extra");
  sys.dsp_comp->port("in")->provide(extra);
  sys.ctrl_comp->port("out")->require(extra);
  auto& sm = *sys.ctrl_comp->behavior();
  auto& tx = *sm.states()[1];
  sys.model.add_timer_transition(sm, tx, tx, "t3")
      .add_effect(uml::Action::send("out", extra, {}));
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "flow.signal.ignored", "dsp1")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "flow.signal.ignored"));
}

TEST(AnalysisFlow, UnboundBoundaryPort) {
  test::MiniSystem sys;
  sys.model.add_port(*sys.app, "dangling").provide(*sys.req);
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "flow.boundary.unbound", "dangling")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "flow.boundary.unbound"));
}

TEST(AnalysisFlow, StarvedProcess) {
  test::MiniSystem sys;
  // A process that only reacts to a signal nothing routes to it.
  auto& cls = sys.model.create_class("Widget", nullptr, /*active=*/true);
  sys.model.add_port(cls, "win").provide(*sys.req);
  auto& sm = sys.model.create_behavior(cls);
  auto& idle = sys.model.add_state(sm, "Idle", true);
  sys.model.add_transition(sm, idle, idle, *sys.req, "win");
  auto& part = sys.model.add_part(*sys.app, "widget", cls);
  part.apply(*sys.prof.application_process);
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "flow.process.starved", "widget")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "flow.process.starved"));
}

TEST(AnalysisFlow, WaitForDeadlockCycle) {
  test::MiniSystem sys;
  // p and q only ever answer each other; neither has a timer, a completion
  // transition or environment input.
  const auto make_pingpong = [&sys](const std::string& name) -> uml::Class& {
    auto& cls = sys.model.create_class(name, nullptr, /*active=*/true);
    sys.model.add_port(cls, "rx").provide(*sys.req);
    sys.model.add_port(cls, "tx").require(*sys.req);
    auto& sm = sys.model.create_behavior(cls);
    auto& idle = sys.model.add_state(sm, "Idle", true);
    sys.model.add_transition(sm, idle, idle, *sys.req, "rx")
        .add_effect(uml::Action::send("tx", *sys.req, {"1"}));
    return cls;
  };
  sys.model.add_part(*sys.app, "p", make_pingpong("Ping"));
  sys.model.add_part(*sys.app, "q", make_pingpong("Pong"));
  sys.model.connect(*sys.app, "p", "tx", "q", "rx");
  sys.model.connect(*sys.app, "q", "tx", "p", "rx");
  const auto r = analysis::analyze(sys.model);
  const analysis::Diagnostic* d = find_rule(r, "flow.cycle.deadlock");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_NE(d->message.find("'p'"), std::string::npos);
  EXPECT_NE(d->message.find("'q'"), std::string::npos);
  // Cycle members are not additionally reported as starved.
  EXPECT_FALSE(has_rule(r, "flow.process.starved", "MiniApp.p"));
  EXPECT_FALSE(has_rule(clean_report(), "flow.cycle.deadlock"));
}

TEST(AnalysisFlow, AmbiguousHierarchyDegradesToDiagnostic) {
  test::MiniSystem sys;
  // A passive structural class with internal structure instantiated twice:
  // the flattening router cannot identify its boundary uniquely.
  auto& shell = sys.model.create_class("Shell");
  sys.model.add_part(shell, "inner", *sys.ctrl_comp);
  sys.model.add_part(*sys.app, "s1", shell);
  sys.model.add_part(*sys.app, "s2", shell);
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "flow.hierarchy.ambiguous")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "flow.hierarchy.ambiguous"));
}

// ---------------------------------------------------------------------------
// Mapping / platform family
// ---------------------------------------------------------------------------

TEST(AnalysisMapping, UnmappedGroup) {
  test::MiniSystem sys;
  auto& gcls = sys.model.create_class("GroupCls");
  auto& orphan = sys.model.add_part(*sys.app, "g_orphan", gcls);
  orphan.apply(*sys.prof.process_group);
  const auto r = analysis::analyze(sys.model);
  const analysis::Diagnostic* d = find_rule(r, "map.group.unmapped");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_FALSE(has_rule(clean_report(), "map.group.unmapped"));
}

TEST(AnalysisMapping, IncompatibleProcessType) {
  test::MiniSystem sys;
  auto& gcls = sys.model.create_class("GroupCls");
  auto& ghw = sys.model.add_part(*sys.app, "g_hw2", gcls);
  ghw.apply(*sys.prof.process_group).tagged_values["ProcessType"] = "hardware";
  mapping::MappingBuilder mb(sys.model, sys.prof);
  mb.map(ghw, *sys.cpu1);  // cpu1 is a general-purpose CPU
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "map.pe.incompatible", "g_hw2")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "map.pe.incompatible"));
}

TEST(AnalysisMapping, OvercommittedMemory) {
  test::MiniSystem sys;
  // dsp1+dsp2 inherit CodeMemory 8192 each from DspFilter; 1000 bytes of
  // IntMemory cannot hold them.
  sys.cpu2->apply(*sys.prof.component_instance).tagged_values["IntMemory"] =
      "1000";
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "map.pe.overcommitted", "cpu2")) << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "map.pe.overcommitted"));

  // A generous budget is not flagged.
  test::MiniSystem roomy;
  roomy.cpu2->apply(*roomy.prof.component_instance).tagged_values["IntMemory"] =
      "65536";
  EXPECT_FALSE(
      has_rule(analysis::analyze(roomy.model), "map.pe.overcommitted"));
}

TEST(AnalysisMapping, UnattachedSegment) {
  test::MiniSystem sys;
  auto& scls = sys.model.create_class("SegCls");
  auto& stray = sys.model.add_part(*sys.plat, "stray_seg", scls);
  stray.apply(*sys.prof.communication_segment);
  const auto r = analysis::analyze(sys.model);
  EXPECT_TRUE(has_rule(r, "plat.segment.unattached", "stray_seg"))
      << r.to_text();
  EXPECT_FALSE(has_rule(clean_report(), "plat.segment.unattached"));
}

namespace {

/// Two processes mapped to PEs on two segments; `bridged` decides whether
/// the segments are joined.
uml::Model* two_island(bool bridged, std::unique_ptr<uml::Model>& hold) {
  hold = std::make_unique<uml::Model>("island");
  uml::Model& model = *hold;
  profile::TutProfile prof = profile::install(model);

  appmodel::ApplicationBuilder ab(model, prof);
  ab.application("App");
  auto& comp = ab.component("Worker");
  auto& sm = *comp.behavior();
  auto& idle = model.add_state(sm, "Idle", true);
  idle.on_entry(uml::Action::set_timer("t", "100"));
  model.add_timer_transition(sm, idle, idle, "t")
      .add_effect(uml::Action::compute("1"));
  auto& a = ab.process("a", comp, {{"ProcessType", "general"}});
  auto& b = ab.process("b", comp, {{"ProcessType", "general"}});
  auto& ga = ab.group("ga");
  auto& gb = ab.group("gb");
  ab.assign(a, ga);
  ab.assign(b, gb);

  platform::PlatformBuilder pb(model, prof);
  pb.platform("Plat");
  auto& cpu = pb.component_type("Cpu", {{"Type", "general"}});
  auto& pe_a = pb.instance("pe_a", cpu);
  auto& pe_b = pb.instance("pe_b", cpu);
  auto& s1 = pb.segment("s1");
  auto& s2 = pb.segment("s2");
  pb.wrapper(pe_a, s1);
  pb.wrapper(pe_b, s2);
  if (bridged) pb.bridge_link(s1, s2);

  mapping::MappingBuilder mb(model, prof);
  mb.map(ga, pe_a);
  mb.map(gb, pe_b);
  return &model;
}

}  // namespace

TEST(AnalysisMapping, MissingRouteBetweenHostingPes) {
  std::unique_ptr<uml::Model> hold;
  const auto r = analysis::analyze(*two_island(false, hold));
  const analysis::Diagnostic* d = find_rule(r, "plat.route.missing");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::Error);

  std::unique_ptr<uml::Model> hold2;
  const auto ok = analysis::analyze(*two_island(true, hold2));
  EXPECT_FALSE(has_rule(ok, "plat.route.missing")) << ok.to_text();
}

TEST(AnalysisMapping, FailoverEscalatesWhenFaultPlanHitsSpof) {
  test::MiniSystem sys;
  sim::FaultPlan plan;
  plan.pe_faults.push_back({"acc", 100, 0});
  analysis::Options options;
  options.faults = &plan;
  const auto r = analysis::analyze(sys.model, options);
  const analysis::Diagnostic* d = find_rule(r, "map.failover.infeasible");
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::Error);
  // Without a plan the same finding is informational (see baseline test).
  EXPECT_EQ(find_rule(clean_report(), "map.failover.infeasible")->severity,
            Severity::Info);
}

TEST(AnalysisMapping, FaultPlanNamesUnknownComponents) {
  test::MiniSystem sys;
  sim::FaultPlan plan;
  plan.pe_faults.push_back({"no_such_pe", 10, 0});
  plan.bit_errors.push_back({"no_such_seg", 100});
  plan.signal_faults.push_back(
      {sim::SignalFault::Kind::Lost, "no_such_proc", "", 0, 0});
  analysis::Options options;
  options.faults = &plan;
  const auto r = analysis::analyze(sys.model, options);
  std::size_t unknowns = 0;
  for (const analysis::Diagnostic& d : r.diagnostics()) {
    unknowns += d.rule == "fault.component.unknown" ? 1 : 0;
  }
  EXPECT_EQ(unknowns, 3u) << r.to_text();

  sim::FaultPlan good;
  good.pe_faults.push_back({"cpu1", 10, 0});
  analysis::Options ok_options;
  ok_options.faults = &good;
  EXPECT_FALSE(has_rule(analysis::analyze(sys.model, ok_options),
                        "fault.component.unknown"));
}

// ---------------------------------------------------------------------------
// Source map and byte offsets
// ---------------------------------------------------------------------------

TEST(AnalysisSourceMap, MapsElementIdsToStartTags) {
  test::MiniSystem sys;
  const std::string xml = uml::to_xml_string(sys.model);
  const auto smap = analysis::SourceMap::build(xml);
  ASSERT_GT(smap.size(), 0u);

  const long at = smap.offset_of(sys.app->id());
  ASSERT_GE(at, 0);
  EXPECT_EQ(xml.compare(static_cast<std::size_t>(at), 7, "<class "), 0);
  EXPECT_NE(xml.find("id=\"" + sys.app->id() + "\"",
                     static_cast<std::size_t>(at)),
            std::string::npos);
  EXPECT_EQ(smap.offset_of("no-such-id"), -1);
}

TEST(AnalysisSourceMap, SkipsPrologAndComments) {
  const std::string xml =
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<root id=\"r1\">"
      "<!-- x --><child id=\"c1\"/></root>";
  const auto smap = analysis::SourceMap::build(xml);
  EXPECT_EQ(smap.offset_of("r1"), static_cast<long>(xml.find("<root")));
  EXPECT_EQ(smap.offset_of("c1"), static_cast<long>(xml.find("<child")));
}

TEST(AnalysisSourceMap, DuplicateIdsFirstOccurrenceWins) {
  const std::string xml = "<model><a id=\"dup\"/><b id=\"dup\"/></model>";
  const auto smap = analysis::SourceMap::build(xml);
  EXPECT_EQ(smap.offset_of("dup"), 7);  // "<a ...", not the later "<b ..."
  EXPECT_EQ(xml.compare(7, 2, "<a"), 0);
}

TEST(AnalysisSourceMap, IdsInsideCommentsAndCdataAreNotElements) {
  const std::string xml =
      "<model><!-- <fake id=\"ghost\"/> --><real id=\"r\">"
      "<![CDATA[<x id=\"hidden\"/>]]></real></model>";
  const auto smap = analysis::SourceMap::build(xml);
  EXPECT_EQ(smap.offset_of("ghost"), -1);
  EXPECT_EQ(smap.offset_of("hidden"), -1);
  EXPECT_EQ(smap.offset_of("r"), 34);  // raw byte of "<real", past the comment
  EXPECT_EQ(xml.compare(34, 5, "<real"), 0);
}

TEST(AnalysisSourceMap, OffsetsAreRawBytesPastEntityDecodes) {
  // "a&amp;b&lt;c" decodes to 5 characters but spans 12 raw bytes; the
  // offsets of later elements must count the raw bytes.
  const std::string xml =
      "<model name=\"a&amp;b&lt;c\"><n id=\"after\"/></model>";
  const auto smap = analysis::SourceMap::build(xml);
  EXPECT_EQ(smap.offset_of("after"), 27);
  EXPECT_EQ(xml.compare(27, 2, "<n"), 0);
  EXPECT_EQ(static_cast<long>(xml.find("<n")), 27);
}

TEST(Analysis, DiagnosticsCarryByteOffsets) {
  test::MiniSystem sys;
  const std::string xml = uml::to_xml_string(sys.model);
  const auto parsed = uml::from_xml_string(xml);
  analysis::Options options;
  options.xml_text = xml;
  const auto r = analysis::analyze(*parsed, options);
  const analysis::Diagnostic* d = find_rule(r, "flow.port.unbound");
  ASSERT_NE(d, nullptr) << r.to_text();
  ASSERT_GE(d->offset, 0);
  EXPECT_EQ(xml.compare(static_cast<std::size_t>(d->offset), 9, "<property"),
            0);
}

// ---------------------------------------------------------------------------
// Diagnostics engine: Report, Baseline, renderers
// ---------------------------------------------------------------------------

TEST(Diagnostics, TextRendering) {
  analysis::Diagnostic d{Severity::Warning, "a.rule", "Pkg.Elem", "watch out",
                         42, false};
  EXPECT_EQ(d.to_text(), "warning [a.rule] Pkg.Elem @42: watch out");
  d.offset = -1;
  d.suppressed = true;
  EXPECT_EQ(d.to_text(), "warning [a.rule] Pkg.Elem: watch out (baseline)");
}

TEST(Diagnostics, BaselineParsing) {
  const auto b = analysis::Baseline::parse(
      "# comment\n\nrule.a\tPkg.One\r\n  rule.bare  \n");
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(b.matches(
      analysis::Diagnostic{Severity::Error, "rule.a", "Pkg.One", "", -1, false}));
  EXPECT_FALSE(b.matches(
      analysis::Diagnostic{Severity::Error, "rule.a", "Pkg.Two", "", -1, false}));
}

TEST(Diagnostics, ReportAppliesBaselineIncludingBareRules) {
  analysis::Report r;
  r.add(Severity::Error, "rule.a", "e1", "m1");
  r.add(Severity::Warning, "rule.b", "e2", "m2");
  r.add(Severity::Warning, "rule.c", "e3", "m3");
  r.apply_baseline(analysis::Baseline::parse("rule.a\te1\nrule.b\n"));
  EXPECT_EQ(r.error_count(), 0u);
  EXPECT_EQ(r.warning_count(), 1u);  // rule.c survives
  EXPECT_EQ(r.suppressed_count(), 2u);
  EXPECT_TRUE(r.ok(/*werror=*/false));
  EXPECT_FALSE(r.ok(/*werror=*/true));
}

TEST(Diagnostics, BaselineRoundTrip) {
  analysis::Report r;
  r.add(Severity::Warning, "rule.b", "e2", "m2");
  r.add(Severity::Error, "rule.a", "e1", "m1");
  const std::string text = analysis::Baseline::from_diagnostics(r.diagnostics());
  r.apply_baseline(analysis::Baseline::parse(text));
  EXPECT_EQ(r.suppressed_count(), 2u);
  EXPECT_TRUE(r.ok(/*werror=*/true));
}

TEST(Diagnostics, SortOrdersByOffsetThenRule) {
  analysis::Report r;
  r.add(Severity::Error, "z.rule", "e", "m", 50);
  r.add(Severity::Error, "b.rule", "e", "m");  // no offset: last
  r.add(Severity::Error, "a.rule", "e", "m", 10);
  r.sort();
  EXPECT_EQ(r.diagnostics()[0].rule, "a.rule");
  EXPECT_EQ(r.diagnostics()[1].rule, "z.rule");
  EXPECT_EQ(r.diagnostics()[2].rule, "b.rule");
}

TEST(Diagnostics, JsonRenderingEscapesAndCounts) {
  analysis::Report r;
  r.add(Severity::Error, "a.rule", "e\"1\"", "line1\nline2", 7);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"element\":\"e\\\"1\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"message\":\"line1\\nline2\""), std::string::npos);
  EXPECT_NE(json.find("\"offset\":7"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":0"), std::string::npos);
}

TEST(Diagnostics, MergePullsOffsetsThroughResolver) {
  uml::Model model("m");
  auto& cls = model.create_class("C");
  uml::ValidationResult vr;
  vr.add(Severity::Warning, "some.rule", cls, "msg");
  analysis::Report r;
  r.merge(vr, [](const std::string& qn) { return qn == "C" ? 123l : -1l; });
  ASSERT_EQ(r.diagnostics().size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].offset, 123);
  EXPECT_EQ(r.diagnostics()[0].rule, "some.rule");
}
