// Tests for the typed model layers: appmodel, platform (incl. routing) and
// mapping / SystemView.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "uml/serialize.hpp"

using namespace tut;

// ---------------------------------------------------------------------------
// ApplicationBuilder / ApplicationView
// ---------------------------------------------------------------------------

TEST(AppModel, BuilderAppliesStereotypes) {
  test::MiniSystem sys;
  EXPECT_TRUE(sys.app->has_stereotype("Application"));
  EXPECT_FALSE(sys.app->is_active());
  EXPECT_TRUE(sys.ctrl_comp->has_stereotype("ApplicationComponent"));
  EXPECT_TRUE(sys.ctrl_comp->is_active());
  EXPECT_NE(sys.ctrl_comp->behavior(), nullptr);
  EXPECT_TRUE(sys.ctrl->has_stereotype("ApplicationProcess"));
  EXPECT_EQ(sys.ctrl->part_type(), sys.ctrl_comp);
  EXPECT_TRUE(sys.group_dsp->has_stereotype("ProcessGroup"));
}

TEST(AppModel, BuilderEnforcesCallOrder) {
  uml::Model model{"m"};
  auto prof = profile::install(model);
  appmodel::ApplicationBuilder ab(model, prof);
  auto& comp = ab.component("C");
  EXPECT_THROW((void)ab.process("p", comp), std::logic_error);
  ab.application("App");
  EXPECT_THROW((void)ab.application("Again"), std::logic_error);
  EXPECT_NO_THROW((void)ab.process("p", comp));
}

TEST(AppModel, ViewFindsEverything) {
  test::MiniSystem sys;
  appmodel::ApplicationView view(sys.model);
  EXPECT_EQ(view.application(), sys.app);
  EXPECT_EQ(view.processes().size(), 4u);
  EXPECT_EQ(view.groups().size(), 3u);
  EXPECT_EQ(view.process_named("dsp1"), sys.dsp1);
  EXPECT_EQ(view.process_named("nope"), nullptr);
  EXPECT_EQ(view.group_named("g_hw"), sys.group_hw);
}

TEST(AppModel, GroupMembership) {
  test::MiniSystem sys;
  appmodel::ApplicationView view(sys.model);
  EXPECT_EQ(view.group_of(*sys.ctrl), sys.group_ctrl);
  EXPECT_EQ(view.group_of(*sys.dsp2), sys.group_dsp);
  const auto members = view.members(*sys.group_dsp);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], sys.dsp1);
  EXPECT_EQ(members[1], sys.dsp2);
  EXPECT_EQ(view.members(*sys.group_hw).size(), 1u);

  const uml::Dependency* dep = view.grouping_of(*sys.ctrl);
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(dep->tagged_value("Fixed"), "true");
  EXPECT_EQ(view.grouping_of(*sys.dsp1)->tagged_value("Fixed"), "false");
}

TEST(AppModel, EffectiveIntFallsBackProcessComponentApplication) {
  test::MiniSystem sys;
  appmodel::ApplicationView view(sys.model);
  // Priority set on the process itself.
  EXPECT_EQ(view.effective_int(*sys.ctrl, "Priority", -1), 2);
  // CodeMemory comes from the component class.
  EXPECT_EQ(view.effective_int(*sys.dsp1, "CodeMemory", -1), 8192);
  // Unset anywhere: fallback.
  EXPECT_EQ(view.effective_int(*sys.crc, "DataMemory", 777), 777);
}

TEST(AppModel, TagLongHandlesMalformed) {
  test::MiniSystem sys;
  sys.ctrl->apply(*sys.prof.application_process, {{"Priority", "abc"}});
  EXPECT_EQ(appmodel::tag_long(*sys.ctrl, "Priority", 42), 42);
}

TEST(AppModel, ViewOnEmptyModelIsEmpty) {
  uml::Model model{"empty"};
  appmodel::ApplicationView view(model);
  EXPECT_EQ(view.application(), nullptr);
  EXPECT_TRUE(view.processes().empty());
  EXPECT_TRUE(view.groups().empty());
}

// ---------------------------------------------------------------------------
// PlatformBuilder / PlatformView
// ---------------------------------------------------------------------------

TEST(Platform, BuilderAppliesStereotypesAndAutoIds) {
  test::MiniSystem sys;
  EXPECT_TRUE(sys.plat->has_stereotype("Platform"));
  EXPECT_TRUE(sys.cpu_type->has_stereotype("Component"));
  EXPECT_TRUE(sys.cpu1->has_stereotype("ComponentInstance"));
  EXPECT_EQ(sys.cpu1->tagged_value("ID"), "1");
  EXPECT_EQ(sys.cpu2->tagged_value("ID"), "2");
  EXPECT_EQ(sys.acc->tagged_value("ID"), "3");
  EXPECT_TRUE(sys.seg1->has_stereotype("HIBISegment"));
  EXPECT_TRUE(sys.seg1->has_stereotype("CommunicationSegment"));  // inherited
}

TEST(Platform, WrapperAddressesAutoAssignedPerSegment) {
  test::MiniSystem sys;
  platform::PlatformView view(sys.model);
  const auto w1 = view.wrappers_of(*sys.cpu1);
  const auto w2 = view.wrappers_of(*sys.cpu2);
  const auto wa = view.wrappers_of(*sys.acc);
  ASSERT_EQ(w1.size(), 1u);
  ASSERT_EQ(w2.size(), 1u);
  ASSERT_EQ(wa.size(), 1u);
  EXPECT_EQ(w1[0]->tagged_value("Address"), "0");
  EXPECT_EQ(w2[0]->tagged_value("Address"), "1");
  // acc is on a different segment, so addressing restarts.
  EXPECT_EQ(wa[0]->tagged_value("Address"), "0");
  EXPECT_TRUE(w1[0]->has_stereotype("HIBIWrapper"));
  EXPECT_TRUE(w1[0]->has_stereotype("CommunicationWrapper"));
  EXPECT_EQ(w1[0]->tagged_value("BufferSize"), "64");
}

TEST(Platform, ViewTopology) {
  test::MiniSystem sys;
  platform::PlatformView view(sys.model);
  EXPECT_EQ(view.platform(), sys.plat);
  EXPECT_EQ(view.instances().size(), 3u);
  EXPECT_EQ(view.segments().size(), 3u);
  EXPECT_EQ(view.instance_named("cpu2"), sys.cpu2);
  EXPECT_EQ(view.segment_named("bridge"), sys.bridge);
  EXPECT_EQ(view.segment_of(*sys.cpu1), sys.seg1);
  EXPECT_EQ(view.segment_of(*sys.acc), sys.seg2);
  EXPECT_EQ(view.instances_on(*sys.seg1).size(), 2u);
  EXPECT_EQ(view.instances_on(*sys.seg2).size(), 1u);

  const auto n1 = view.neighbors(*sys.seg1);
  ASSERT_EQ(n1.size(), 1u);
  EXPECT_EQ(n1[0], sys.bridge);
  EXPECT_EQ(view.neighbors(*sys.bridge).size(), 2u);
}

TEST(Platform, RouteSameSegment) {
  test::MiniSystem sys;
  platform::PlatformView view(sys.model);
  const auto path = view.route(*sys.cpu1, *sys.cpu2);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], sys.seg1);
}

TEST(Platform, RouteAcrossBridge) {
  test::MiniSystem sys;
  platform::PlatformView view(sys.model);
  const auto path = view.route(*sys.cpu2, *sys.acc);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], sys.seg1);
  EXPECT_EQ(path[1], sys.bridge);
  EXPECT_EQ(path[2], sys.seg2);
  // Routing is symmetric in length.
  EXPECT_EQ(view.route(*sys.acc, *sys.cpu2).size(), 3u);
}

TEST(Platform, RouteUnattachedInstanceIsEmpty) {
  test::MiniSystem sys;
  platform::PlatformBuilder pb(sys.model, sys.prof);
  auto& lonely = sys.model.add_part(*sys.plat, "lonely", *sys.cpu_type);
  lonely.apply(*sys.prof.component_instance, {{"ID", "9"}});
  platform::PlatformView view(sys.model);
  EXPECT_TRUE(view.route(lonely, *sys.cpu1).empty());
  EXPECT_TRUE(view.route(*sys.cpu1, lonely).empty());
}

TEST(Platform, RouteDisconnectedSegments) {
  test::MiniSystem sys;
  platform::PlatformBuilder pb(sys.model, sys.prof);
  // A new isolated segment with one instance: no bridge to the rest.
  uml::Model& m = sys.model;
  auto& seg9 = m.add_part(*sys.plat, "seg9", *sys.seg1->part_type());
  seg9.apply(*sys.prof.hibi_segment);
  auto& cpu9 = m.add_part(*sys.plat, "cpu9", *sys.cpu_type);
  cpu9.apply(*sys.prof.component_instance, {{"ID", "10"}});
  m.connect(*sys.plat, "cpu9", "bus", "seg9", "conn")
      .apply(*sys.prof.hibi_wrapper, {{"Address", "0"}});
  platform::PlatformView view(m);
  EXPECT_TRUE(view.route(cpu9, *sys.cpu1).empty());
}

TEST(Platform, BuilderEnforcesCallOrder) {
  uml::Model model{"m"};
  auto prof = profile::install(model);
  platform::PlatformBuilder pb(model, prof);
  auto& t = pb.component_type("Cpu");
  EXPECT_THROW((void)pb.instance("i", t), std::logic_error);
  pb.platform("P");
  EXPECT_THROW((void)pb.platform("Q"), std::logic_error);
  EXPECT_NO_THROW((void)pb.instance("i", t));
}

// ---------------------------------------------------------------------------
// Mapping / SystemView
// ---------------------------------------------------------------------------

TEST(Mapping, SystemViewResolvesMappings) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  EXPECT_EQ(view.instance_for_group(*sys.group_ctrl), sys.cpu1);
  EXPECT_EQ(view.instance_for_group(*sys.group_dsp), sys.cpu2);
  EXPECT_EQ(view.instance_for_group(*sys.group_hw), sys.acc);
  EXPECT_EQ(view.instance_for_process(*sys.dsp1), sys.cpu2);
  EXPECT_EQ(view.instance_for_process(*sys.crc), sys.acc);
  EXPECT_TRUE(view.mapping_fixed(*sys.group_ctrl));
  EXPECT_FALSE(view.mapping_fixed(*sys.group_dsp));
}

TEST(Mapping, ProcessesOnInstance) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  EXPECT_EQ(view.processes_on(*sys.cpu1).size(), 1u);
  EXPECT_EQ(view.processes_on(*sys.cpu2).size(), 2u);
  EXPECT_EQ(view.groups_on(*sys.acc).size(), 1u);
}

TEST(Mapping, UnmappedGroupResolvesToNull) {
  test::MiniSystem sys;
  auto& g = sys.model.add_part(*sys.app, "g_x", *sys.group_hw->part_type());
  g.apply(*sys.prof.process_group);
  mapping::SystemView view(sys.model);
  EXPECT_EQ(view.instance_for_group(g), nullptr);
  EXPECT_EQ(view.mapping_of(g), nullptr);
  EXPECT_FALSE(view.mapping_fixed(g));
}

TEST(Mapping, CombinedPriorityFallback) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  EXPECT_EQ(view.process_priority(*sys.ctrl), 2);  // process tag
  // crc has no Priority anywhere except... acc instance has none either.
  EXPECT_EQ(view.process_priority(*sys.crc), 0);
  // dsp1 has priority 1 on the process.
  EXPECT_EQ(view.process_priority(*sys.dsp1), 1);
}

TEST(Mapping, InstanceFrequency) {
  test::MiniSystem sys;
  mapping::SystemView view(sys.model);
  EXPECT_EQ(view.instance_frequency_mhz(*sys.cpu1), 50);
  EXPECT_EQ(view.instance_frequency_mhz(*sys.acc), 100);
}

TEST(Mapping, SystemViewSurvivesRoundTrip) {
  test::MiniSystem sys;
  const auto restored = uml::from_xml_string(uml::to_xml_string(sys.model));
  mapping::SystemView view(*restored);
  EXPECT_EQ(view.app().processes().size(), 4u);
  EXPECT_EQ(view.plat().instances().size(), 3u);
  const uml::Property* dsp1 = view.app().process_named("dsp1");
  ASSERT_NE(dsp1, nullptr);
  const uml::Property* cpu2 = view.plat().instance_named("cpu2");
  EXPECT_EQ(view.instance_for_process(*dsp1), cpu2);
  // Routing still works on the restored model.
  const uml::Property* acc = view.plat().instance_named("acc");
  EXPECT_EQ(view.plat().route(*cpu2, *acc).size(), 3u);
}
