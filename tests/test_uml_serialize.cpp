// Round-trip tests for the XML interchange format (tut::uml::serialize).
#include <gtest/gtest.h>

#include "uml/serialize.hpp"
#include "uml/validation.hpp"

using namespace tut::uml;

namespace {

/// A model that exercises every serializable construct, including forward
/// references (generalization set after both classes exist, ports that
/// acquire signals late).
struct FullModel {
  Model model{"full"};

  FullModel() {
    auto& pkg = model.create_package("app");
    auto& sub = model.create_package("inner", &pkg);
    (void)sub;

    auto& sig = model.create_signal("Msg", &pkg);
    sig.add_parameter("len", "int").add_parameter("kind", "int");
    auto& ack = model.create_signal("Ack", &pkg);

    auto& base = model.create_class("BaseComp", &pkg, true);
    auto& worker = model.create_class("Worker", &pkg, true);
    auto& top = model.create_class("Top", &pkg);
    // Forward reference: general created after the referencing class exists.
    base.set_general(&worker);

    model.add_attribute(worker, "count", "int");
    model.add_port(worker, "in").provide(sig).require(ack);
    model.add_port(worker, "out").require(sig).provide(ack);
    model.add_port(top, "ext").provide(sig);

    model.add_part(top, "w1", worker);
    model.add_part(top, "w2", worker);
    model.connect(top, "w1", "out", "w2", "in");
    model.connect_boundary(top, "ext", "w1", "in");

    auto& sm = model.create_behavior(worker);
    sm.declare_variable("n", 7);
    auto& idle = model.add_state(sm, "Idle", true);
    idle.on_entry(Action::compute("10"));
    auto& run = model.add_state(sm, "Run");
    auto& t1 = model.add_transition(sm, idle, run, sig, "in");
    t1.set_guard("n > 0");
    t1.add_effect(Action::assign("n", "n - 1"));
    t1.add_effect(Action::send("out", ack, {"n", "n * 2"}));
    t1.add_effect(Action::set_timer("tmo", "100"));
    auto& t2 = model.add_timer_transition(sm, run, idle, "tmo");
    t2.add_effect(Action::reset_timer("tmo"));
    auto& t3 = model.add_transition(sm, run, idle);  // completion
    t3.set_guard("n == 0");

    auto& profile = model.create_profile("TUT");
    auto& st = model.create_stereotype(profile, "ApplicationComponent",
                                       ElementKind::Class);
    st.define_tag("CodeMemory", TagType::Integer, "bytes of code");
    st.define_tag("RealTimeType", TagType::Enum, "rt",
                  {"hard", "soft", "none"});
    auto& spec = model.create_stereotype(profile, "DspComponent",
                                         ElementKind::Class, &st);
    spec.define_tag("Mips", TagType::Integer, "", {}, true);

    worker.apply(st, {{"CodeMemory", "4096"}, {"RealTimeType", "soft"}});
    base.apply(spec, {{"Mips", "120"}});

    model.create_dependency("grp", worker, top);
  }
};

}  // namespace

TEST(UmlSerialize, ProducesParsableXml) {
  FullModel f;
  const std::string text = to_xml_string(f.model);
  EXPECT_NE(text.find("<tut:model"), std::string::npos);
  EXPECT_NO_THROW((void)tut::xml::parse(text));
}

TEST(UmlSerialize, RoundTripIsTextualFixedPoint) {
  FullModel f;
  const std::string once = to_xml_string(f.model);
  const auto restored = from_xml_string(once);
  const std::string twice = to_xml_string(*restored);
  EXPECT_EQ(once, twice);
}

TEST(UmlSerialize, RoundTripPreservesStructure) {
  FullModel f;
  const auto restored = from_xml_string(to_xml_string(f.model));

  EXPECT_EQ(restored->name(), "full");
  EXPECT_EQ(restored->size(), f.model.size());

  Class* worker = restored->find_class("Worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_TRUE(worker->is_active());
  EXPECT_EQ(worker->ports().size(), 2u);
  EXPECT_EQ(worker->attributes().size(), 1u);
  Signal* msg = restored->find_signal("Msg");
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->parameters().size(), 2u);
  EXPECT_TRUE(worker->port("in")->provides(*msg));

  Class* base = restored->find_class("BaseComp");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->general(), worker);  // forward reference survived

  Class* top = restored->find_class("Top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->parts().size(), 2u);
  EXPECT_EQ(top->parts()[0]->part_type(), worker);
  ASSERT_EQ(top->connectors().size(), 2u);
  EXPECT_EQ(top->connectors()[1]->end0().part, nullptr);  // boundary end
  EXPECT_EQ(top->connectors()[1]->end0().port, top->port("ext"));
}

TEST(UmlSerialize, RoundTripPreservesBehavior) {
  FullModel f;
  const auto restored = from_xml_string(to_xml_string(f.model));
  Class* worker = restored->find_class("Worker");
  ASSERT_NE(worker, nullptr);
  StateMachine* sm = worker->behavior();
  ASSERT_NE(sm, nullptr);
  EXPECT_EQ(sm->context(), worker);
  EXPECT_EQ(sm->states().size(), 2u);
  EXPECT_EQ(sm->transitions().size(), 3u);
  ASSERT_EQ(sm->variables().size(), 1u);
  EXPECT_EQ(sm->variables()[0].first, "n");
  EXPECT_EQ(sm->variables()[0].second, 7);

  State* idle = sm->state("Idle");
  ASSERT_NE(idle, nullptr);
  EXPECT_TRUE(idle->is_initial());
  ASSERT_EQ(idle->entry_actions().size(), 1u);
  EXPECT_EQ(idle->entry_actions()[0].kind, Action::Kind::Compute);

  auto out = sm->outgoing(*idle);
  ASSERT_EQ(out.size(), 1u);
  const Transition* t1 = out[0];
  EXPECT_EQ(t1->guard(), "n > 0");
  EXPECT_EQ(t1->trigger_port(), "in");
  ASSERT_NE(t1->trigger_signal(), nullptr);
  EXPECT_EQ(t1->trigger_signal()->name(), "Msg");
  ASSERT_EQ(t1->effects().size(), 3u);
  EXPECT_EQ(t1->effects()[1].kind, Action::Kind::Send);
  ASSERT_EQ(t1->effects()[1].args.size(), 2u);
  EXPECT_EQ(t1->effects()[1].args[1], "n * 2");
  EXPECT_EQ(t1->effects()[2].kind, Action::Kind::SetTimer);

  // Completion transition kept its empty trigger.
  State* run = sm->state("Run");
  auto run_out = sm->outgoing(*run);
  ASSERT_EQ(run_out.size(), 2u);
  EXPECT_EQ(run_out[0]->trigger_timer(), "tmo");
  EXPECT_TRUE(run_out[1]->is_completion());
}

TEST(UmlSerialize, RoundTripPreservesProfileAndApplications) {
  FullModel f;
  const auto restored = from_xml_string(to_xml_string(f.model));

  auto profiles = restored->elements_of_kind(ElementKind::Profile);
  ASSERT_EQ(profiles.size(), 1u);
  auto* profile = static_cast<Profile*>(profiles[0]);
  ASSERT_EQ(profile->stereotypes().size(), 2u);

  Stereotype* st = profile->stereotype("ApplicationComponent");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->own_tags().size(), 2u);
  const TagDefinition* rtt = st->tag("RealTimeType");
  ASSERT_NE(rtt, nullptr);
  EXPECT_EQ(rtt->type, TagType::Enum);
  EXPECT_EQ(rtt->enumerators.size(), 3u);

  Stereotype* spec = profile->stereotype("DspComponent");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->general(), st);
  ASSERT_NE(spec->tag("Mips"), nullptr);
  EXPECT_TRUE(spec->tag("Mips")->required);

  Class* worker = restored->find_class("Worker");
  EXPECT_EQ(worker->tagged_value("CodeMemory"), "4096");
  Class* base = restored->find_class("BaseComp");
  EXPECT_TRUE(base->has_stereotype("ApplicationComponent"));  // via general
  EXPECT_EQ(base->tagged_value("Mips"), "120");
}

TEST(UmlSerialize, RoundTripPreservesDependencies) {
  FullModel f;
  const auto restored = from_xml_string(to_xml_string(f.model));
  auto deps = restored->elements_of_kind(ElementKind::Dependency);
  ASSERT_EQ(deps.size(), 1u);
  auto* dep = static_cast<Dependency*>(deps[0]);
  EXPECT_EQ(dep->client(), restored->find_class("Worker"));
  EXPECT_EQ(dep->supplier(), restored->find_class("Top"));
}

TEST(UmlSerialize, RestoredModelStillValidates) {
  FullModel f;
  const auto restored = from_xml_string(to_xml_string(f.model));
  const auto result = Validator::uml_core().run(*restored);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(UmlSerialize, RestoredModelFactoriesKeepWorking) {
  FullModel f;
  auto restored = from_xml_string(to_xml_string(f.model));
  // New elements must get fresh ids that do not collide with ingested ones.
  auto& extra = restored->create_class("Extra");
  EXPECT_EQ(restored->find(extra.id()), &extra);
  std::size_t count = 0;
  for (const auto& e : restored->elements()) {
    if (e->id() == extra.id()) ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(UmlSerialize, RejectsWrongRootAndDanglingRefs) {
  EXPECT_THROW((void)from_xml_string("<wrong/>"), std::runtime_error);
  EXPECT_THROW(
      (void)from_xml_string("<tut:model name=\"m\">"
                            "<class id=\"e0\" name=\"A\" general=\"e99\"/>"
                            "</tut:model>"),
      std::runtime_error);
  EXPECT_THROW(
      (void)from_xml_string("<tut:model name=\"m\"><bogus id=\"e0\"/></tut:model>"),
      std::runtime_error);
}

TEST(UmlSerialize, EmptyModelRoundTrips) {
  Model m("empty");
  const auto restored = from_xml_string(to_xml_string(m));
  EXPECT_EQ(restored->name(), "empty");
  EXPECT_EQ(restored->size(), 0u);
}

// ---------------------------------------------------------------------------
// Dual-path equivalence: the streaming writer and the DOM writer, and the
// pull-cursor reader and the DOM reader, must agree byte-for-byte.
// ---------------------------------------------------------------------------

TEST(UmlSerializeDualPath, StreamingWriterMatchesDomWriter) {
  FullModel f;
  EXPECT_EQ(to_xml_string(f.model), tut::xml::write(to_xml(f.model)));

  Model empty("empty");
  EXPECT_EQ(to_xml_string(empty), tut::xml::write(to_xml(empty)));
}

TEST(UmlSerializeDualPath, PullReaderMatchesDomReader) {
  FullModel f;
  const std::string bytes = to_xml_string(f.model);

  // Reference path: mutable DOM all the way.
  const auto via_dom = from_xml(tut::xml::parse(bytes));
  // Hot path: pull cursor -> arena tree.
  const auto via_tree = from_xml_text(bytes);

  EXPECT_EQ(via_dom->size(), via_tree->size());
  // Byte-identical re-serialization pins every field both readers restored.
  EXPECT_EQ(to_xml_string(*via_dom), to_xml_string(*via_tree));
  EXPECT_EQ(to_xml_string(*via_tree), bytes);
}

TEST(UmlSerializeDualPath, HandWrittenFixturesAgreeAcrossPaths) {
  // Entities, CDATA, auto-assigned ids and defaulted attributes — inputs a
  // serializer would never emit but an external tool might.
  const char* fixtures[] = {
      "<tut:model name=\"m &amp; co\">"
      "<package id=\"p0\" name=\"a&lt;b\"/>"
      "<signal id=\"s0\" name=\"Sig\" payloadBytes=\"8\">"
      "<param name=\"x\" type=\"int\"/></signal>"
      "</tut:model>",
      // Missing ids: reader assigns e0, e1, ... in document order.
      "<tut:model name=\"auto\">"
      "<package name=\"p\"/><class name=\"C\"/>"
      "</tut:model>",
      // CDATA in an action argument, defaulted payloadBytes and active.
      "<tut:model name=\"beh\">"
      "<class id=\"c0\" name=\"C\"/>"
      "<stateMachine id=\"m0\" name=\"SM\" owner=\"c0\"/>"
      "<state id=\"st0\" name=\"Idle\" owner=\"m0\" initial=\"true\">"
      "<entry><action kind=\"compute\" expr=\"x+1\">"
      "<arg><![CDATA[a < b]]></arg></action></entry></state>"
      "</tut:model>",
  };
  for (const char* fx : fixtures) {
    const auto via_dom = from_xml(tut::xml::parse(fx));
    const auto via_tree = from_xml_text(fx);
    EXPECT_EQ(to_xml_string(*via_dom), to_xml_string(*via_tree)) << fx;
    // And the restored model re-serializes to a fixed point on both paths.
    const std::string bytes = to_xml_string(*via_tree);
    EXPECT_EQ(to_xml_string(*from_xml_text(bytes)), bytes) << fx;
  }
}

TEST(UmlSerializeDualPath, AutoIdCounterAdvancesPastIngestedIds) {
  const auto m = from_xml_text(
      "<tut:model name=\"m\"><package id=\"e7\" name=\"p\"/></tut:model>");
  auto& pkg = m->create_package("next");
  EXPECT_EQ(pkg.id(), "e8");  // counter advanced past the ingested e7
}
