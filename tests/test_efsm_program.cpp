// Tests for the compiled EFSM path: Program bytecode vs Expr AST
// equivalence (values, laziness, error precedence and messages) and
// CompiledInstance vs Instance lock-step equivalence over whole machines.
#include <gtest/gtest.h>

#include "efsm/expr.hpp"
#include "efsm/machine.hpp"
#include "efsm/program.hpp"
#include "uml/model.hpp"

using namespace tut;
using namespace tut::efsm;

namespace {

/// Compiles `text` against the identifiers of `env` and runs it.
long run_program(const std::string& text, const Env& env) {
  const Expr expr = Expr::compile(text);
  Program::SlotMap slot_map;
  std::vector<long> values;
  std::vector<std::uint8_t> defined;
  std::vector<std::string> names;
  for (const auto& [name, value] : env) {
    slot_map.emplace(name, static_cast<std::uint16_t>(values.size()));
    names.push_back(name);
    values.push_back(value);
    defined.push_back(1);
  }
  const Program program = Program::compile(expr, slot_map);
  std::vector<long> regs(program.reg_count());
  return program.run({values.data(), defined.data(), &names}, regs.data());
}

/// The AST result, or the EvalError message.
std::string ast_outcome(const std::string& text, const Env& env) {
  try {
    return std::to_string(Expr::compile(text).eval(env));
  } catch (const EvalError& e) {
    return std::string("EvalError: ") + e.what();
  }
}

/// The bytecode result, or the EvalError message.
std::string program_outcome(const std::string& text, const Env& env) {
  try {
    return std::to_string(run_program(text, env));
  } catch (const EvalError& e) {
    return std::string("EvalError: ") + e.what();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Program vs Expr
// ---------------------------------------------------------------------------

TEST(Program, MatchesAstOnExpressionCorpus) {
  const Env env{{"a", 7}, {"b", 3}, {"len", 12}, {"x", 0}, {"_u2", 5}};
  const char* corpus[] = {
      "42",
      "a",
      "_u2",
      "a + b - 2",
      "2 + 3 * 4",
      "(2 + 3) * 4",
      "a / b + a % b",
      "-a + 10",
      "--a",
      "!x",
      "!a",
      "a == 7",
      "a != 7",
      "b < a",
      "a <= 7",
      "a > 7",
      "a >= 8",
      "a > 0 && b > 0",
      "a > 0 && x > 0",
      "a > 0 || 1 / x",      // short-circuit skips the division
      "x > 0 && 1 / x",
      "a > b ? 100 : 200",
      "a < b ? 100 : 200",
      "x ? 1 : a ? 2 : 3",
      "400 * len + 2",
      "1 + 2 == 3",
      "x ? 1 / x : a",       // lazy arm never evaluated
      "(a && b) + (x || len)",
      "-(a - b) * -(b - a)",
      "a % 2 == 1 && b % 2 == 1",
  };
  for (const char* text : corpus) {
    EXPECT_EQ(program_outcome(text, env), ast_outcome(text, env)) << text;
  }
}

TEST(Program, ErrorMessagesAndPrecedenceMatchAst) {
  const Env env{{"a", 1}, {"x", 0}};
  // Division by zero, modulo by zero, unknown identifier — and the order in
  // which two possible errors surface (the AST evaluates the divisor first).
  const char* corpus[] = {
      "1 / x",
      "1 % x",
      "nosuch",
      "nosuch / x",      // divisor x==0 wins: division by zero, not unknown
      "x / nosuch",      // divisor evaluated first: unknown identifier
      "1 / (a - 1)",
      "x && nosuch",     // short-circuit: no error, value 0
      "a || nosuch",     // short-circuit: no error, value 1
      "x ? nosuch : 5",  // lazy arm: no error
  };
  for (const char* text : corpus) {
    EXPECT_EQ(program_outcome(text, env), ast_outcome(text, env)) << text;
  }
}

TEST(Program, MissingSlotThrowsLazily) {
  // An identifier absent from the slot map compiles to a Missing op that
  // only throws when reached.
  const Expr expr = Expr::compile("x > 0 && ghost");
  Program::SlotMap slot_map{{"x", 0}};
  const Program program = Program::compile(expr, slot_map);
  const std::vector<std::string> names{"x"};
  std::vector<long> regs(program.reg_count());

  const long x_zero[] = {0};
  const std::uint8_t defined[] = {1};
  EXPECT_EQ(program.run({x_zero, defined, &names}, regs.data()), 0);

  const long x_one[] = {1};
  try {
    (void)program.run({x_one, defined, &names}, regs.data());
    FAIL() << "expected EvalError";
  } catch (const EvalError& e) {
    EXPECT_STREQ(e.what(), "unknown identifier 'ghost'");
  }
}

TEST(Program, UndefinedSlotReadsAsUnknownIdentifier) {
  const Expr expr = Expr::compile("v + 1");
  Program::SlotMap slot_map{{"v", 0}};
  const Program program = Program::compile(expr, slot_map);
  const std::vector<std::string> names{"v"};
  std::vector<long> regs(program.reg_count());
  const long values[] = {41};

  const std::uint8_t undef[] = {0};
  try {
    (void)program.run({values, undef, &names}, regs.data());
    FAIL() << "expected EvalError";
  } catch (const EvalError& e) {
    EXPECT_STREQ(e.what(), "unknown identifier 'v'");
  }

  const std::uint8_t def[] = {1};
  EXPECT_EQ(program.run({values, def, &names}, regs.data()), 42);
}

// ---------------------------------------------------------------------------
// CompiledInstance vs Instance
// ---------------------------------------------------------------------------

namespace {

/// The counter machine of test_efsm.cpp: parameters, guards, entry sends,
/// completion transitions and dynamic variables.
struct CounterModel {
  uml::Model model{"counter"};
  uml::Signal* inc;
  uml::Signal* get;
  uml::Signal* result;
  uml::StateMachine* sm;

  CounterModel() {
    inc = &model.create_signal("Inc");
    inc->add_parameter("step", "int");
    get = &model.create_signal("Get");
    result = &model.create_signal("Result");
    result->add_parameter("value", "int");

    auto& cls = model.create_class("Counter", nullptr, true);
    model.add_port(cls, "in").provide(*inc).provide(*get);
    model.add_port(cls, "out").require(*result);

    sm = &model.create_behavior(cls);
    sm->declare_variable("n", 0);
    auto& idle = model.add_state(*sm, "Idle", true);
    auto& report = model.add_state(*sm, "Report");
    report.on_entry(uml::Action::send("out", *result, {"n"}));

    model.add_transition(*sm, idle, idle, *inc, "in")
        .add_effect(uml::Action::assign("n", "n + step"))
        .add_effect(uml::Action::compute("10"));
    model.add_transition(*sm, idle, report, *get, "in").set_guard("n >= 3");
    model.add_transition(*sm, report, idle)
        .add_effect(uml::Action::assign("n", "0"));
  }
};

std::string describe(const StepResult& r) {
  std::string out = "fired=" + std::to_string(r.fired) +
                    " cycles=" + std::to_string(r.compute_cycles) +
                    " taken=" + std::to_string(r.transitions_taken);
  for (const Send& s : r.sends) {
    out += " send(" + s.port + "," +
           (s.signal != nullptr ? s.signal->name() : "?");
    for (const long a : s.args) out += "," + std::to_string(a);
    out += ")";
  }
  for (const TimerOp& t : r.timers) {
    out += t.kind == TimerOp::Kind::Set
               ? " set(" + t.name + "," + std::to_string(t.delay) + ")"
               : " reset(" + t.name + ")";
  }
  return out;
}

/// Drives the AST and bytecode instances in lock step, asserting identical
/// StepResults and states after every operation.
struct LockStep {
  Instance ast;
  CompiledMachine machine;
  CompiledInstance code;

  explicit LockStep(const uml::StateMachine& sm)
      : ast(sm, "p"), machine(sm), code(machine, "p") {}

  void start() { check(ast.start(), code.start(), "start"); }
  void reset() { check(ast.reset(), code.reset(), "reset"); }
  void deliver(const Event& e) {
    check(ast.deliver(e), code.deliver(e), "deliver");
  }
  void timer(const std::string& t) {
    check(ast.timer_fired(t), code.timer_fired(t), "timer " + t);
  }

  void check(const StepResult& a, const StepResult& b,
             const std::string& what) {
    EXPECT_EQ(describe(a), describe(b)) << what;
    ASSERT_NE(ast.state(), nullptr);
    EXPECT_EQ(ast.state()->name(), code.state_name()) << what;
  }
};

}  // namespace

TEST(CompiledInstance, CounterMachineLockStep) {
  CounterModel m;
  LockStep ls(*m.sm);
  ls.start();
  ls.deliver({m.get, "in", {}});   // guard false: discarded
  ls.deliver({m.inc, "in", {5}});
  ls.deliver({m.inc, "in", {}});   // missing arg defaults to 0
  ls.deliver({m.inc, "out", {1}}); // wrong port: no trigger
  ls.deliver({m.get, "in", {}});   // fires: entry send + completion chain
  EXPECT_EQ(ls.ast.variable("n"), ls.code.variable("n"));
  ls.deliver({m.inc, "in", {2}});
  ls.reset();
  EXPECT_EQ(ls.ast.variable("n"), 0);
  EXPECT_EQ(ls.code.variable("n"), 0);
  ls.deliver({m.inc, "in", {4}});
  ls.deliver({m.get, "in", {}});
}

TEST(CompiledInstance, ParamShadowsVariableThenRestores) {
  // A signal parameter named like a persistent variable shadows it for the
  // step; an Assign to that name during the step writes through.
  uml::Model model{"m"};
  auto& probe = model.create_signal("Probe");
  probe.add_parameter("v", "int");
  auto& keep = model.create_signal("Keep");
  keep.add_parameter("v", "int");
  auto& out_sig = model.create_signal("Out");
  out_sig.add_parameter("value", "int");

  auto& cls = model.create_class("C", nullptr, true);
  model.add_port(cls, "in").provide(probe).provide(keep);
  model.add_port(cls, "out").require(out_sig);
  auto& sm = model.create_behavior(cls);
  sm.declare_variable("v", 100);
  auto& a = model.add_state(sm, "A", true);
  // Probe: sends the shadowed value, leaves the variable alone.
  model.add_transition(sm, a, a, probe, "in")
      .add_effect(uml::Action::send("out", out_sig, {"v"}));
  // Keep: assigns through the shadow, making the parameter value persist.
  model.add_transition(sm, a, a, keep, "in")
      .add_effect(uml::Action::assign("v", "v + 1"));

  LockStep ls(sm);
  ls.start();
  ls.deliver({&probe, "in", {7}});   // sends 7 (shadow), v stays 100
  EXPECT_EQ(ls.ast.variable("v"), 100);
  EXPECT_EQ(ls.code.variable("v"), 100);
  ls.deliver({&keep, "in", {7}});    // assigns v = 7 + 1
  EXPECT_EQ(ls.ast.variable("v"), 8);
  EXPECT_EQ(ls.code.variable("v"), 8);
  ls.deliver({&probe, "in", {3}});   // sends 3, v stays 8
  EXPECT_EQ(ls.ast.variable("v"), 8);
  EXPECT_EQ(ls.code.variable("v"), 8);
}

TEST(CompiledInstance, DynamicVariablesAndTimers) {
  uml::Model model{"m"};
  auto& cls = model.create_class("C", nullptr, true);
  auto& sm = model.create_behavior(cls);
  sm.declare_variable("ticks", 0);
  auto& a = model.add_state(sm, "A", true);
  a.on_entry(uml::Action::set_timer("t", "50"));
  model.add_timer_transition(sm, a, a, "t")
      .add_effect(uml::Action::assign("ticks", "ticks + 1"))
      .add_effect(uml::Action::assign("extra", "ticks * 2"));

  LockStep ls(sm);
  ls.start();
  ls.timer("t");
  ls.timer("t");
  EXPECT_EQ(ls.ast.variable("ticks"), 2);
  EXPECT_EQ(ls.code.variable("ticks"), 2);
  // "extra" was created by an Assign, not declared.
  EXPECT_EQ(ls.ast.variable("extra"), ls.code.variable("extra"));
  ls.timer("zzz");  // unknown timer: discarded identically
  EXPECT_THROW((void)ls.code.variable("nosuch"), std::out_of_range);
}

TEST(CompiledInstance, ErrorsMatchAstPath) {
  CounterModel m;
  CompiledMachine machine(*m.sm);
  CompiledInstance inst(machine, "c");
  // Stepping before start throws like the AST path; declared variables are
  // readable from construction on both paths.
  EXPECT_THROW((void)inst.deliver({m.inc, "in", {1}}), std::logic_error);
  EXPECT_THROW((void)inst.timer_fired("t"), std::logic_error);
  EXPECT_EQ(inst.variable("n"), Instance(*m.sm, "c").variable("n"));
  EXPECT_THROW((void)inst.variable("nosuch"), std::out_of_range);
}

TEST(CompiledInstance, CompletionLivelockDetected) {
  uml::Model model{"m"};
  auto& cls = model.create_class("C", nullptr, true);
  auto& sm = model.create_behavior(cls);
  auto& a = model.add_state(sm, "A", true);
  auto& b = model.add_state(sm, "B");
  model.add_transition(sm, a, b);
  model.add_transition(sm, b, a);

  CompiledMachine machine(sm);
  CompiledInstance inst(machine, "loop");
  EXPECT_THROW((void)inst.start(), LivelockError);

  Instance ast(sm, "loop");
  EXPECT_THROW((void)ast.start(), LivelockError);
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

TEST(Disassemble, ProgramListingPinsInstructionSelection) {
  // Pinned listing: a change in instruction selection for this expression
  // must show up in review as a diff here.
  const Expr expr = Expr::compile("n + 1");
  Program::SlotMap slot_map{{"n", 0}};
  const Program program = Program::compile(expr, slot_map);
  const std::vector<std::string> names{"n"};
  EXPECT_EQ(disassemble(program, &names),
            "0000  Slot    r0, [0]         ; n\n"
            "0001  Const   r1, #0          ; = 1\n"
            "0002  Add     r0, r0, r1\n");
}

TEST(Disassemble, CoversBranchesAndErrors) {
  // Short-circuit && compiles to Jz; division adds a ChkDiv; an unmapped
  // identifier becomes Missing. The listing names them all.
  const Expr expr = Expr::compile("n > 0 && 10 / n > ghost");
  Program::SlotMap slot_map{{"n", 0}};
  const Program program = Program::compile(expr, slot_map);
  const std::vector<std::string> names{"n"};
  const std::string text = disassemble(program, &names);
  EXPECT_NE(text.find("Jz      r"), std::string::npos) << text;
  EXPECT_NE(text.find("ChkDiv"), std::string::npos) << text;
  EXPECT_NE(text.find("; 'ghost'"), std::string::npos) << text;
  EXPECT_EQ(disassemble(Program{}), "(empty)\n");
}

TEST(Disassemble, MachineListingShowsStatesAndTriggers) {
  CounterModel m;
  const CompiledMachine machine(*m.sm);
  const std::string text = disassemble(machine);
  EXPECT_NE(text.find("machine "), std::string::npos);
  EXPECT_NE(text.find("var [0] n = 0"), std::string::npos) << text;
  EXPECT_NE(text.find("state [0] Idle (initial)"), std::string::npos) << text;
  EXPECT_NE(text.find("on Inc@in"), std::string::npos) << text;
  EXPECT_NE(text.find("on completion"), std::string::npos) << text;
  EXPECT_NE(text.find("guard:"), std::string::npos) << text;
  EXPECT_NE(text.find("send Result via out"), std::string::npos) << text;
}

TEST(CompiledMachine, MalformedExpressionThrowsAtLowering) {
  // The documented divergence: the AST path defers ExprError to first
  // evaluation, the compiled path fails at machine construction.
  uml::Model model{"m"};
  auto& cls = model.create_class("C", nullptr, true);
  auto& sm = model.create_behavior(cls);
  auto& a = model.add_state(sm, "A", true);
  model.add_transition(sm, a, a).set_guard("1 +");
  EXPECT_THROW((void)CompiledMachine(sm), ExprError);
}
