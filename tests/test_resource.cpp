// Tests for sim::ResourceProfile — the resource-envelope contract:
//
//  - Deterministic exhaustion: every ceiling (log ring, event queue, XML
//    arena, keep_logs budget, reorder depth, concurrency) rejects with a
//    classified [envelope.*] tag, the sim time of the hit, and no partial
//    mutation of the capped structure.
//  - Semantic lock: any run that fits its envelope is byte-identical to the
//    unbounded run — logs, fault replays, campaign digests — under every
//    profile class, 1/2/4 threads, and both behaviour backends.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "codegen/native.hpp"
#include "sim/batch.hpp"
#include "sim/campaign.hpp"
#include "sim/compiled.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/log.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"
#include "xml/arena.hpp"

#define REQUIRE_COMPILER()                            \
  if (codegen::NativeImage::find_compiler().empty()) \
  GTEST_SKIP() << "no C++ compiler on this host"

using namespace tut;
using namespace tut::sim;

namespace {

const tutmac::System& shared_system() {
  static tutmac::System sys = [] {
    tutmac::Options opt;
    opt.horizon = 2'000'000;
    return tutmac::build(opt);
  }();
  return sys;
}

std::shared_ptr<const CompiledModel> shared_image() {
  static std::shared_ptr<const CompiledModel> image = [] {
    mapping::SystemView view(*shared_system().model);
    return CompiledModel::build(view);
  }();
  return image;
}

std::shared_ptr<const codegen::NativeImage> shared_native() {
  static auto image = codegen::NativeImage::build(shared_image());
  return image;
}

void setup_scenario(Simulation& sim, const Scenario& sc) {
  const tutmac::System& sys = shared_system();
  tutmac::Options o = sys.options;
  o.horizon = sim.config().horizon;
  o.slot_period = static_cast<Time>(
      sc.param("slotPeriod", static_cast<long>(o.slot_period)));
  sys.inject_workload(sim, o);
}

/// 12-scenario sweep with a fault plan, same shape as the campaign suite's.
CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "envelope-test";
  spec.base.horizon = 2'000'000;
  spec.base_seed = 42;
  FaultPlan plan;
  plan.segment_faults.push_back({"hibisegment1", 200'000, 600'000});
  plan.bit_errors.push_back({"hibisegment2", 50'000});
  spec.plans.emplace_back("seg", std::move(plan));
  spec.axes.push_back({"seed", {0, 1, 2}});
  spec.axes.push_back({"slotPeriod", {50'000, 100'000}});
  spec.axes.push_back({"plan", {0, 1}});
  return spec;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Config fault_config() {
  Config config;
  config.horizon = 2'000'000;
  config.faults.segment_faults.push_back({"hibisegment1", 100'000, 900'000});
  config.faults.bit_errors.push_back({"hibisegment2", 200'000});
  config.faults.watchdog_timeout = 500'000;
  config.faults.seed = 7;
  return config;
}

/// Records of an unbounded reference run with a fault plan (drops+retries
/// exercise every log record kind the envelope must preserve).
std::string reference_log_text() {
  static const std::string text = [] {
    Simulation sim(shared_image(), fault_config());
    setup_scenario(sim, Scenario{});
    sim.run();
    return sim.log().to_text();
  }();
  return text;
}

}  // namespace

// ---------------------------------------------------------------------------
// Profile classes and the XML loader
// ---------------------------------------------------------------------------

TEST(ResourceProfile, NamedClassesResolveAndUnknownIsTagged) {
  EXPECT_EQ(ResourceProfile::by_name("unbounded").log_records, 0u);
  const ResourceProfile c = ResourceProfile::constrained();
  EXPECT_EQ(c.name, "constrained");
  EXPECT_NE(c.log_records, 0u);
  EXPECT_NE(c.event_queue, 0u);
  EXPECT_NE(c.arena_bytes, 0u);
  EXPECT_EQ(c.concurrency, 2u);
  EXPECT_LT(c.log_records, ResourceProfile::balanced().log_records);
  EXPECT_LT(ResourceProfile::balanced().log_records,
            ResourceProfile::server().log_records);
  try {
    ResourceProfile::by_name("tiny");
    FAIL() << "unknown class accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("[profile.class.unknown]"),
              std::string::npos)
        << e.what();
  }
}

TEST(ResourceProfile, CacheBytesCapResolvesAndParses) {
  // The serve daemon's model-cache ceiling is a first-class cap: every
  // class carries one, and XML envelopes may override it by name.
  EXPECT_EQ(ResourceProfile::unbounded().cache_bytes, 0u);
  EXPECT_EQ(ResourceProfile::constrained().cache_bytes, 16u << 20);
  EXPECT_EQ(ResourceProfile::balanced().cache_bytes, 256u << 20);
  EXPECT_EQ(ResourceProfile::server().cache_bytes, 1u << 30);

  const ResourceProfile p = ResourceProfile::from_xml_text(
      "<tut:profile class=\"balanced\">\n"
      "  <cap name=\"cacheBytes\" value=\"131072\"/>\n"
      "</tut:profile>\n");
  EXPECT_EQ(p.cache_bytes, 131'072u);
  EXPECT_NE(p.to_text().find("cache 131072 bytes"), std::string::npos);
}

TEST(ResourceProfile, XmlLoaderSeedsFromClassAndOverridesCaps) {
  const ResourceProfile p = ResourceProfile::from_xml_text(
      "<tut:profile class=\"constrained\" spill=\"ring.spill\">\n"
      "  <cap name=\"logRecords\" value=\"4096\"/>\n"
      "  <cap name=\"reorderDepth\" value=\"8\"/>\n"
      "</tut:profile>\n");
  EXPECT_EQ(p.name, "constrained");
  EXPECT_EQ(p.log_records, 4096u);
  EXPECT_EQ(p.reorder_depth, 8u);
  EXPECT_EQ(p.log_spill_path, "ring.spill");
  // Un-overridden caps keep the class values.
  EXPECT_EQ(p.event_queue, ResourceProfile::constrained().event_queue);

  const ResourceProfile custom = ResourceProfile::from_xml_text(
      "<tut:profile><cap name=\"eventQueue\" value=\"32\"/></tut:profile>");
  EXPECT_EQ(custom.name, "custom");
  EXPECT_EQ(custom.event_queue, 32u);
  EXPECT_EQ(custom.log_records, 0u);
}

TEST(ResourceProfile, XmlLoaderTagsDefects) {
  const auto expect_tag = [](std::string_view text, std::string_view tag) {
    try {
      ResourceProfile::from_xml_text(text);
      FAIL() << "accepted: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(tag), std::string::npos)
          << e.what();
    }
  };
  expect_tag("<tut:campaign/>", "[profile.element.unknown]");
  expect_tag("<tut:profile class=\"huge\"/>", "[profile.class.unknown]");
  expect_tag("<tut:profile><knob name=\"x\" value=\"1\"/></tut:profile>",
             "[profile.element.unknown]");
  expect_tag("<tut:profile><cap name=\"ringSize\" value=\"1\"/></tut:profile>",
             "[profile.cap.unknown]");
  expect_tag("<tut:profile><cap name=\"logRecords\" value=\"lots\"/>"
             "</tut:profile>",
             "[profile.cap.malformed]");
  expect_tag("<tut:profile><cap value=\"1\"/></tut:profile>",
             "[profile.cap.malformed]");
}

// ---------------------------------------------------------------------------
// Log ring: overflow, spill, semantic lock
// ---------------------------------------------------------------------------

TEST(LogEnvelope, OverflowThrowsClassifiedWithSimTimeAndNoPartialMutation) {
  SimulationLog log;
  log.set_envelope(3);
  log.run(10, "p1", 1, 5);
  log.send(20, "p1", "p2", "sig", 8);
  log.drop(30, "p2", "sig");
  const std::string before = log.to_text();
  try {
    log.retry(40, "p2", "sig", 1);
    FAIL() << "append beyond the envelope succeeded";
  } catch (const EnvelopeError& e) {
    EXPECT_EQ(e.tag(), "envelope.log.overflow");
    EXPECT_EQ(e.at(), 40u);
    EXPECT_NE(std::string(e.what()).find("[envelope.log.overflow]"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("t=40"), std::string::npos);
  }
  // No partial mutation: exactly the envelope's worth of records remains,
  // rendered byte-identically, and the rejected retry never counted.
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.to_text(), before);
  EXPECT_EQ(log.retry_count(), 0u);
  EXPECT_EQ(log.drop_count(), 1u);
}

TEST(LogEnvelope, SpillToDiskKeepsTextByteIdenticalAndCountersExact) {
  const std::string spill = temp_path("tut_log_envelope.spill");
  std::filesystem::remove(spill);

  SimulationLog unbounded;
  SimulationLog ring;
  ring.set_envelope(8, spill);
  for (int i = 0; i < 100; ++i) {
    const Time t = static_cast<Time>(10 * i);
    unbounded.run(t, "proc", i, 3);
    ring.run(t, "proc", i, 3);
    if (i % 7 == 0) {
      unbounded.drop(t + 1, "proc", "sig");
      ring.drop(t + 1, "proc", "sig");
    }
    if (i % 11 == 0) {
      unbounded.retry(t + 2, "proc", "sig", i);
      ring.retry(t + 2, "proc", "sig", i);
    }
  }
  EXPECT_TRUE(std::filesystem::exists(spill));
  EXPECT_GT(ring.spilled(), 0u);
  EXPECT_LE(ring.compact_records().size(), 8u);
  // Semantic lock: the serialized log (and so every digest over it) is
  // byte-identical to the unbounded run's.
  EXPECT_EQ(ring.to_text(), unbounded.to_text());
  EXPECT_EQ(log_digest(ring), log_digest(unbounded));
  EXPECT_EQ(ring.size(), unbounded.size());
  // Running counters cover spilled records.
  EXPECT_EQ(ring.drop_count(), unbounded.drop_count());
  EXPECT_EQ(ring.retry_count(), unbounded.retry_count());
  EXPECT_EQ(ring.last_time(), unbounded.last_time());

  ring.clear();
  EXPECT_FALSE(std::filesystem::exists(spill))
      << "clear() must remove the spill file";
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.drop_count(), 0u);
}

TEST(LogEnvelope, FullSimulationUnderSpillIsByteIdentical) {
  const std::string spill = temp_path("tut_sim_envelope.spill");
  std::filesystem::remove(spill);
  Config config = fault_config();
  config.envelope.log_records = 16;
  config.envelope.log_spill_path = spill;
  Simulation sim(shared_image(), config);
  setup_scenario(sim, Scenario{});
  sim.run();
  EXPECT_EQ(sim.log().to_text(), reference_log_text());
  EXPECT_GT(sim.log().spilled(), 0u);
  std::filesystem::remove(spill);
}

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

TEST(QueueEnvelope, EventQueueOverflowThrowsBeforeMutation) {
  EventQueue q;
  q.set_capacity(3);
  q.schedule_at(5, EventRec{EventRec::Kind::Inject, 0, 0, 0});
  q.schedule_at(6, EventRec{EventRec::Kind::Inject, 1, 0, 0});
  q.schedule_at(0, EventRec{EventRec::Kind::Inject, 2, 0, 0});  // bucket
  try {
    q.schedule_at(7, EventRec{EventRec::Kind::Inject, 3, 0, 0});
    FAIL() << "schedule beyond the envelope succeeded";
  } catch (const EnvelopeError& e) {
    EXPECT_EQ(e.tag(), "envelope.queue.full");
    EXPECT_EQ(e.at(), 0u);  // queue time, not event time
    EXPECT_NE(std::string(e.what()).find("[envelope.queue.full]"),
              std::string::npos);
  }
  EXPECT_EQ(q.pending(), 3u);
  // Draining frees envelope room again.
  EventRec ev;
  ASSERT_TRUE(q.poll(100, ev));
  q.schedule_at(q.now() + 1, EventRec{EventRec::Kind::Inject, 4, 0, 0});
  EXPECT_EQ(q.pending(), 3u);
}

TEST(QueueEnvelope, KernelSharesTheContract) {
  Kernel k;
  k.set_capacity(2);
  k.schedule_at(1, [] {});
  k.schedule_at(2, [] {});
  try {
    k.schedule_at(3, [] {});
    FAIL() << "schedule beyond the envelope succeeded";
  } catch (const EnvelopeError& e) {
    EXPECT_EQ(e.tag(), "envelope.queue.full");
  }
  EXPECT_EQ(k.pending(), 2u);
}

TEST(QueueEnvelope, SimulationRejectsDeterministically) {
  // A queue far too small for the workload: the run must die on the same
  // classified error — same message, same sim time — every time and under
  // both backends (the envelope lives in the sim layer, not the executor).
  Config config = fault_config();
  config.envelope.event_queue = 4;
  std::string first;
  for (int round = 0; round < 2; ++round) {
    try {
      Simulation sim(shared_image(), config);
      setup_scenario(sim, Scenario{});
      sim.run();
      FAIL() << "run fit a 4-event envelope";
    } catch (const EnvelopeError& e) {
      EXPECT_EQ(e.tag(), "envelope.queue.full");
      if (round == 0) {
        first = e.what();
      } else {
        EXPECT_EQ(std::string(e.what()), first);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// XML arena
// ---------------------------------------------------------------------------

TEST(ArenaEnvelope, ExhaustionThrowsTaggedAndKeepsPriorAllocations) {
  xml::Arena arena(256, 1024);
  char* first = arena.allocate_bytes(100);
  std::memset(first, 'x', 100);
  try {
    for (int i = 0; i < 64; ++i) arena.allocate_bytes(64);
    FAIL() << "arena grew past its envelope";
  } catch (const xml::ArenaLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("[envelope.arena.exhausted]"),
              std::string::npos)
        << e.what();
  }
  EXPECT_LE(arena.bytes_reserved(), 1024u);
  EXPECT_EQ(first[0], 'x');  // prior allocations stay valid
  EXPECT_EQ(first[99], 'x');
}

TEST(ArenaEnvelope, CampaignSpecParseRespectsTheArenaCeiling) {
  // The pull parser reads plain runs zero-copy; only entity-escaped runs
  // are decoded into the arena. A big escaped axis list is therefore what
  // an arena envelope actually bounds.
  std::string xml = "<tut:campaign name=\"big\"><axis name=\"seed\" values=\"";
  for (int i = 0; i < 4000; ++i) xml += std::to_string(i) + "&#32;";
  xml += "\"/></tut:campaign>";
  // Unbounded parse succeeds; a 2 KiB arena ceiling rejects it classified.
  EXPECT_EQ(CampaignSpec::from_xml_text(xml).total(), 4000u);
  try {
    CampaignSpec::from_xml_text(xml, {}, 2048);
    FAIL() << "parse fit a 2 KiB arena";
  } catch (const xml::ArenaLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("[envelope.arena.exhausted]"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Batch runner
// ---------------------------------------------------------------------------

TEST(BatchEnvelope, KeepLogBudgetRejectsClassifiedWithoutPoisoningOthers) {
  std::vector<BatchScenario> scenarios(3);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].name = "s" + std::to_string(i);
    scenarios[i].config.horizon =
        i == 1 ? 2'000'000 : 200'000;  // scenario 1 renders a larger log
    scenarios[i].setup = [](Simulation& sim) {
      setup_scenario(sim, Scenario{});
    };
  }
  // Pick a budget between the short and the long scenarios' rendered sizes.
  BatchOptions probe;
  probe.threads = 1;
  probe.keep_logs = true;
  const auto plain = BatchRunner(shared_image(), probe).run(scenarios);
  ASSERT_EQ(plain[0].error, "");
  ASSERT_EQ(plain[1].error, "");
  const std::size_t small = plain[0].log_text.size();
  const std::size_t large = plain[1].log_text.size();
  ASSERT_LT(small, large);

  BatchOptions options = probe;
  options.profile.keep_log_bytes = (small + large) / 2;
  const auto results = BatchRunner(shared_image(), options).run(scenarios);
  EXPECT_EQ(results[0].error, "");
  EXPECT_EQ(results[0].log_hash, plain[0].log_hash);
  EXPECT_NE(results[1].error.find("[envelope.log.overflow]"),
            std::string::npos)
      << results[1].error;
  EXPECT_EQ(results[1].log_text, "");  // no partial retention
  EXPECT_EQ(results[2].error, "");
  EXPECT_EQ(results[2].log_hash, plain[2].log_hash);
}

TEST(BatchEnvelope, ConcurrencyCapClampsWorkers) {
  BatchOptions options;
  options.threads = 8;
  options.profile.concurrency = 2;
  EXPECT_EQ(BatchRunner(shared_image(), options).threads(), 2u);
}

// ---------------------------------------------------------------------------
// Campaign: semantic lock
// ---------------------------------------------------------------------------

TEST(CampaignEnvelope, DigestsByteIdenticalAcrossProfilesAndThreadCounts) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner({shared_image()}, setup_scenario);
  const std::string reference =
      runner.run(spec, CampaignOptions{}).aggregate.serialize();
  for (const ResourceProfile& profile :
       {ResourceProfile::constrained(), ResourceProfile::balanced(),
        ResourceProfile::server()}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      CampaignOptions options;
      options.threads = threads;
      options.profile = profile;
      const CampaignResult result = runner.run(spec, options);
      EXPECT_EQ(result.aggregate.serialize(), reference)
          << profile.name << " x " << threads << " threads";
      EXPECT_EQ(result.aggregate.rejected, 0u);
    }
  }
}

TEST(CampaignEnvelope, NativeBackendDigestsMatchUnderEveryProfile) {
  REQUIRE_COMPILER();
  const CampaignSpec spec = small_spec();
  const CampaignRunner interp({shared_image()}, setup_scenario);
  const std::string reference =
      interp.run(spec, CampaignOptions{}).aggregate.serialize();
  const CampaignRunner native(
      std::vector<std::shared_ptr<const BackendImage>>{shared_native()},
      setup_scenario);
  for (const ResourceProfile& profile :
       {ResourceProfile::unbounded(), ResourceProfile::constrained()}) {
    CampaignOptions options;
    options.threads = 2;
    options.profile = profile;
    EXPECT_EQ(native.run(spec, options).aggregate.serialize(), reference)
        << profile.name;
  }
}

TEST(CampaignEnvelope, ReorderDepthBoundsClaimsAndPreservesDigests) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner({shared_image()}, setup_scenario);
  const std::string reference =
      runner.run(spec, CampaignOptions{}).aggregate.serialize();
  for (const std::uint64_t depth : {1u, 2u, 7u}) {
    CampaignOptions options;
    options.threads = 4;
    options.profile.reorder_depth = depth;
    EXPECT_EQ(runner.run(spec, options).aggregate.serialize(), reference)
        << "depth " << depth;
  }
}

TEST(CampaignEnvelope, ConcurrencyClampIsNotedAndPreservesDigests) {
  const CampaignSpec spec = small_spec();
  const CampaignRunner runner({shared_image()}, setup_scenario);
  const std::string reference =
      runner.run(spec, CampaignOptions{}).aggregate.serialize();
  CampaignOptions options;
  options.threads = 4;
  options.profile = ResourceProfile::constrained();  // concurrency = 2
  const CampaignResult result = runner.run(spec, options);
  EXPECT_EQ(result.aggregate.serialize(), reference);
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_NE(result.notes[0].find("[envelope.concurrency.capped]"),
            std::string::npos)
      << result.notes[0];
  // No clamp, no note.
  CampaignOptions plain;
  plain.threads = 2;
  plain.profile = ResourceProfile::constrained();
  EXPECT_TRUE(runner.run(spec, plain).notes.empty());
}

// ---------------------------------------------------------------------------
// Campaign: deterministic exhaustion
// ---------------------------------------------------------------------------

namespace {

/// Sweep whose horizon axis splits the scenarios into small and large logs;
/// a log_records cap between the two rejects exactly the long-horizon half.
CampaignSpec split_spec() {
  CampaignSpec spec;
  spec.name = "envelope-split";
  spec.base_seed = 42;
  spec.axes.push_back({"seed", {0, 1, 2}});
  spec.axes.push_back({"horizon", {200'000, 2'000'000}});
  return spec;
}

/// Log record counts of one short- and one long-horizon scenario.
std::pair<std::size_t, std::size_t> split_record_counts() {
  std::size_t counts[2];
  for (int i = 0; i < 2; ++i) {
    const CampaignSpec spec = split_spec();
    const Scenario sc = spec.scenario(static_cast<std::uint64_t>(i));
    Simulation sim(shared_image(), sc.config);
    setup_scenario(sim, sc);
    sim.run();
    counts[i] = sim.log().size();
  }
  return {counts[0], counts[1]};
}

}  // namespace

TEST(CampaignEnvelope, RejectionIsCountedClassifiedAndIsolated) {
  const CampaignSpec spec = split_spec();
  const auto [small, large] = split_record_counts();
  ASSERT_LT(small, large);

  const CampaignRunner runner({shared_image()}, setup_scenario);
  // Unbounded reference summaries, indexed by scenario.
  std::vector<ScenarioSummary> reference(spec.total());
  CampaignOptions plain;
  plain.on_summary = [&](const ScenarioSummary& s) { reference[s.index] = s; };
  runner.run(spec, plain);

  CampaignOptions options;
  options.profile.log_records = (small + large) / 2;
  std::vector<ScenarioSummary> summaries(spec.total());
  options.on_summary = [&](const ScenarioSummary& s) {
    summaries[s.index] = s;
  };
  const CampaignResult result = runner.run(spec, options);

  // Exactly the long-horizon half (odd indices: horizon is the last, fastest
  // axis) is rejected; each rejection is classified and fully zeroed.
  EXPECT_EQ(result.aggregate.rejected, 3u);
  EXPECT_EQ(result.aggregate.rejected_log, 3u);
  EXPECT_EQ(result.aggregate.rejected_queue, 0u);
  EXPECT_EQ(result.aggregate.errors, 3u);
  for (std::uint64_t i = 0; i < spec.total(); ++i) {
    if (i % 2 == 0) {
      // In-envelope scenarios are untouched by the neighbours' exhaustion.
      EXPECT_EQ(summaries[i].digest, reference[i].digest) << "scenario " << i;
      EXPECT_EQ(summaries[i].error, 0u);
      EXPECT_EQ(summaries[i].rejection, 0u);
    } else {
      EXPECT_NE(summaries[i].error, 0u) << "scenario " << i;
      EXPECT_EQ(summaries[i].rejection,
                static_cast<std::uint64_t>(RejectionCode::Log));
      EXPECT_EQ(summaries[i].events, 0u);  // no partial results
      EXPECT_EQ(summaries[i].digest, 0u);
    }
  }
  // The in-envelope aggregate numbers come from the surviving half only.
  std::uint64_t expected_events = 0;
  for (std::uint64_t i = 0; i < spec.total(); i += 2) {
    expected_events += reference[i].events;
  }
  EXPECT_EQ(result.aggregate.events, expected_events);

  // Deterministic exhaustion: identical aggregates on every rerun, thread
  // count, and backend — the rejection hashes like any other outcome.
  for (const std::size_t threads : {1u, 4u}) {
    CampaignOptions again;
    again.threads = threads;
    again.profile = options.profile;
    EXPECT_EQ(runner.run(spec, again).aggregate.serialize(),
              result.aggregate.serialize())
        << threads << " threads";
  }
}

TEST(CampaignEnvelope, RejectionsMatchAcrossBackends) {
  REQUIRE_COMPILER();
  const CampaignSpec spec = split_spec();
  const auto [small, large] = split_record_counts();
  CampaignOptions options;
  options.profile.log_records = (small + large) / 2;
  options.threads = 2;
  const CampaignRunner interp({shared_image()}, setup_scenario);
  const CampaignRunner native(
      std::vector<std::shared_ptr<const BackendImage>>{shared_native()},
      setup_scenario);
  const CampaignResult a = interp.run(spec, options);
  const CampaignResult b = native.run(spec, options);
  ASSERT_GT(a.aggregate.rejected, 0u);
  // The EnvelopeError is raised in the sim layer with an identical message
  // under both executors, so even rejection digests agree byte for byte.
  EXPECT_EQ(a.aggregate.serialize(), b.aggregate.serialize());
}

TEST(CampaignEnvelope, ProfileCapsEnterTheArtifactFingerprint) {
  const CampaignSpec spec = small_spec();
  const std::string ckpt = temp_path("tut_envelope_fp.ckpt");
  std::filesystem::remove(ckpt);
  const CampaignRunner runner({shared_image()}, setup_scenario);
  CampaignOptions options;
  options.checkpoint_path = ckpt;
  options.profile = ResourceProfile::server();
  runner.run(spec, options);
  // Resuming the same campaign under a different envelope must be rejected:
  // its caps could change which scenarios complete.
  CampaignOptions other;
  other.checkpoint_path = ckpt;
  other.resume = true;
  other.profile = ResourceProfile::constrained();
  try {
    runner.run(spec, other);
    FAIL() << "resume across envelopes accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[campaign.checkpoint.mismatch]"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove(ckpt);
}
