// Tests for the parallel design-space exploration engine: determinism
// across thread counts, winner selection and failure modes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "explore/engine.hpp"
#include "explore/measure.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
using namespace tut::explore;

namespace {

/// Synthetic stats: a ring of n processes with varying loads plus chords, so
/// groupings and mappings are non-trivial at every target size.
ProcessStats ring_stats(std::size_t n) {
  ProcessStats s;
  for (std::size_t i = 0; i < n; ++i) {
    s.processes.push_back("p" + std::to_string(i));
  }
  std::uint64_t lcg = 0x2545f4914f6cdd1dull;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  for (std::size_t i = 0; i < n; ++i) {
    s.cycles[s.processes[i]] = static_cast<long>(200 + next() % 5000);
    s.signals[{s.processes[i], s.processes[(i + 1) % n]}] = 10 + next() % 300;
    s.signals[{s.processes[i], s.processes[(i + 3) % n]}] = next() % 40;
  }
  return s;
}

std::vector<PeDesc> two_tier_platform() {
  return {{"cpu0", 100, "general"},
          {"cpu1", 100, "general"},
          {"dsp0", 50, "general"},
          {"acc0", 200, "hw_accelerator"}};
}

/// Serializes a full exploration result so byte-identity is checkable.
std::string fingerprint(const ExplorationResult& result) {
  std::ostringstream os;
  os << "best=" << result.best << '\n';
  for (const CandidateResult& r : result.candidates) {
    os << r.index << '|' << r.target_groups << '|' << r.variant << '|'
       << r.feasible << '|' << r.inter_group << '|';
    for (const auto& group : r.grouping) {
      os << '[';
      for (const auto& p : group) os << p << ',';
      os << ']';
    }
    os << '|';
    for (const auto& t : r.group_type) os << t << ',';
    os << '|';
    for (const auto& pe : r.mapping.target) os << pe << ',';
    os << '|' << std::hexfloat << r.mapping.cost.makespan << '|'
       << r.mapping.cost.comm_cost << '|' << r.mapping.cost.fault_cost
       << std::defaultfloat << '\n';
  }
  return os.str();
}

}  // namespace

TEST(ExploreEngine, ResolvesThreadCount) {
  EngineOptions opt;
  opt.threads = 0;
  ExploreEngine engine(ring_stats(4), two_tier_platform(), {}, opt);
  EXPECT_GE(engine.threads(), 1u);
  opt.threads = 6;
  ExploreEngine fixed(ring_stats(4), two_tier_platform(), {}, opt);
  EXPECT_EQ(fixed.threads(), 6u);
}

TEST(ExploreEngine, CandidateCountCoversSizesTimesVariants) {
  EngineOptions opt;
  opt.threads = 1;
  opt.restarts_per_size = 3;
  ExploreEngine engine(ring_stats(5), two_tier_platform(), {}, opt);
  EXPECT_EQ(engine.candidate_count(), 5u * 4u);
  const auto result = engine.explore();
  EXPECT_EQ(result.candidates.size(), engine.candidate_count());
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    EXPECT_EQ(result.candidates[i].index, i);  // reduce-by-index ordering
  }
}

// The acceptance-critical property: results are byte-identical no matter how
// many threads evaluate the candidate list.
TEST(ExploreEngine, DeterministicAcrossThreadCounts) {
  const auto stats = ring_stats(9);
  const auto pes = two_tier_platform();
  std::map<std::string, std::string> types;
  for (const auto& p : stats.processes) types[p] = "general";
  types["p7"] = "hardware";

  EngineOptions opt;
  opt.restarts_per_size = 4;
  opt.threads = 1;
  ExploreEngine serial(stats, pes, {}, opt);
  const std::string serial_fp = fingerprint(serial.explore(types, {"p0"}));

  for (std::size_t threads : {2u, 8u}) {
    opt.threads = threads;
    ExploreEngine parallel(stats, pes, {}, opt);
    EXPECT_EQ(fingerprint(parallel.explore(types, {"p0"})), serial_fp)
        << "threads=" << threads;
  }
  // Repeated runs of the same engine are stable too.
  EXPECT_EQ(fingerprint(serial.explore(types, {"p0"})), serial_fp);
}

// Fault-scenario scoring must not disturb the thread-count invariance: the
// degraded-makespan replay runs per candidate with no shared state.
TEST(ExploreEngine, FaultScenarioScoringIsThreadCountInvariant) {
  const auto stats = ring_stats(8);
  const auto pes = two_tier_platform();
  CostModel model;
  model.fault_scenarios.push_back({{"cpu0"}, 1.0});
  model.fault_scenarios.push_back({{"cpu1", "dsp0"}, 0.25});

  EngineOptions opt;
  opt.restarts_per_size = 3;
  opt.threads = 1;
  ExploreEngine serial(stats, pes, model, opt);
  const auto serial_result = serial.explore();
  const std::string serial_fp = fingerprint(serial_result);

  // The scenario term is really part of the objective.
  EXPECT_GT(serial_result.winner().mapping.cost.fault_cost, 0.0);
  EXPECT_DOUBLE_EQ(serial_result.winner().mapping.cost.total(),
                   serial_result.winner().mapping.cost.makespan +
                       serial_result.winner().mapping.cost.fault_cost);

  for (std::size_t threads : {2u, 8u}) {
    opt.threads = threads;
    ExploreEngine parallel(stats, pes, model, opt);
    EXPECT_EQ(fingerprint(parallel.explore()), serial_fp)
        << "threads=" << threads;
  }
}

TEST(ExploreEngine, WinnerHasMinimalMakespanAndLowestIndex) {
  EngineOptions opt;
  opt.threads = 2;
  ExploreEngine engine(ring_stats(6), two_tier_platform(), {}, opt);
  const auto result = engine.explore();
  ASSERT_TRUE(result.winner().feasible);
  for (const CandidateResult& r : result.candidates) {
    if (!r.feasible) continue;
    EXPECT_GE(r.mapping.cost.makespan, result.winner().mapping.cost.makespan);
    if (r.mapping.cost.makespan == result.winner().mapping.cost.makespan) {
      EXPECT_GE(r.index, result.best);  // ties break to the lowest index
    }
  }
}

TEST(ExploreEngine, ThrowsWhenNothingIsFeasible) {
  // Hardware-only processes but no accelerator on the platform: every
  // candidate mapping fails, and the engine must say so rather than return
  // a phantom winner.
  auto stats = ring_stats(3);
  std::map<std::string, std::string> types;
  for (const auto& p : stats.processes) types[p] = "hardware";
  const std::vector<PeDesc> no_acc = {{"cpu0", 100, "general"}};
  EngineOptions opt;
  opt.threads = 2;
  opt.restarts_per_size = 1;
  ExploreEngine engine(stats, no_acc, {}, opt);
  EXPECT_THROW((void)engine.explore(types), std::runtime_error);
}

TEST(ExploreEngine, InterGroupMatchesNaiveRecount) {
  EngineOptions opt;
  opt.threads = 1;
  opt.restarts_per_size = 2;
  const auto stats = ring_stats(7);
  ExploreEngine engine(stats, two_tier_platform(), {}, opt);
  const auto result = engine.explore();
  for (const CandidateResult& r : result.candidates) {
    EXPECT_EQ(r.inter_group, inter_group_signals(r.grouping, stats));
  }
}

// End-to-end on the paper system: the engine's winner must be at least as
// good as the single greedy 4-group proposal the feedback loop used before.
TEST(ExploreEngine, TutmacWinnerBeatsSingleGreedyProposal) {
  tutmac::Options mac_opt;
  mac_opt.horizon = 10'000'000;
  tutmac::System sys = tutmac::build(mac_opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());
  const auto stats = ProcessStats::from_report(report);

  std::map<std::string, std::string> types;
  for (const auto& p : stats.processes) types[p] = "general";
  types["crc"] = "hardware";

  const std::vector<PeDesc> pes = {{"cpu", 100, "general"},
                                   {"dsp", 50, "general"},
                                   {"acc", 100, "hw_accelerator"}};

  const Grouping greedy = propose_grouping(stats, types, 4);
  std::vector<std::string> greedy_types;
  for (const auto& group : greedy) greedy_types.push_back(types[group.front()]);
  const auto greedy_mapping =
      propose_mapping(greedy, greedy_types, stats, pes);

  EngineOptions opt;
  opt.threads = 2;
  ExploreEngine engine(stats, pes, {}, opt);
  const auto result = engine.explore(types);
  EXPECT_LE(result.winner().mapping.cost.makespan,
            greedy_mapping.cost.makespan);
}

// ---------------------------------------------------------------------------
// Measured fault scenarios (explore -> sim bridge)
// ---------------------------------------------------------------------------

TEST(MeasureFaultScenarios, SimulatesScenariosDeterministically) {
  tutmac::Options opt;
  opt.horizon = 1'500'000;
  const tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);

  std::vector<CostModel::FaultScenario> scenarios;
  scenarios.push_back({{"processor2"}, 1.0});
  scenarios.push_back({{"processor3"}, 1.0});
  const auto workload = [&sys](sim::Simulation& s) { sys.inject_workload(s); };

  const auto measured =
      measure_fault_scenarios(view, scenarios, workload, opt.horizon, 2);
  ASSERT_EQ(measured.size(), 3u);
  EXPECT_EQ(measured[0].name, "baseline");
  EXPECT_EQ(measured[1].name, "fail:processor2");
  for (const auto& m : measured) {
    EXPECT_TRUE(m.error.empty()) << m.name << ": " << m.error;
    EXPECT_GT(m.makespan, 0.0) << m.name;
    EXPECT_GT(m.events, 0u) << m.name;
  }
  // Failing processor2 perturbs the run relative to the baseline.
  EXPECT_NE(measured[1].log_hash, measured[0].log_hash);

  // Thread count does not change the measurements.
  const auto serial =
      measure_fault_scenarios(view, scenarios, workload, opt.horizon, 1);
  ASSERT_EQ(serial.size(), measured.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_EQ(serial[i].log_hash, measured[i].log_hash) << i;
    EXPECT_EQ(serial[i].makespan, measured[i].makespan) << i;
  }
}

TEST(MeasureFaultScenarios, CalibrationScalesWeightsByMeasuredRatio) {
  CostModel model;
  model.fault_scenarios.push_back({{"pe1"}, 2.0});
  model.fault_scenarios.push_back({{"pe2"}, 1.0});

  std::vector<ScenarioMeasurement> measured(3);
  measured[0].makespan = 100.0;  // baseline
  measured[1].makespan = 150.0;  // 1.5x degraded
  measured[2].error = "did not run";

  const CostModel calibrated = calibrate_fault_weights(model, measured);
  EXPECT_DOUBLE_EQ(calibrated.fault_scenarios[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(calibrated.fault_scenarios[1].weight, 1.0);  // kept

  EXPECT_THROW(
      (void)calibrate_fault_weights(model, std::vector<ScenarioMeasurement>(1)),
      std::invalid_argument);
}
