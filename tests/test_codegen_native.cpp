// End-to-end native execution of generated code: the generated C sources
// (components + host runtime + platform glue) are compiled with gcc, run,
// and their stdout log-file is parsed by the profiler. For a timer-free
// system the native run must produce exactly the same per-process cycle
// totals and signal counts as the C++ co-simulator — generated code and the
// EFSM runtime implement the same semantics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "codegen/codegen.hpp"
#include "profiler/profiler.hpp"
#include "synth/synth.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;
namespace fs = std::filesystem;

namespace {

bool have_gcc() { return std::system("gcc --version > /dev/null 2>&1") == 0; }

/// Compiles every .c file in `bundle` (written to `dir`) and runs the
/// binary, returning its stdout. Fails the test on compile/run errors.
std::string compile_and_run(const codegen::CodeBundle& bundle,
                            const fs::path& dir) {
  fs::remove_all(dir);
  bundle.write_to(dir.string());
  std::string cmd = "gcc -std=c99 -Wall -Werror -O1 -I" + dir.string();
  for (const auto& f : bundle.files) {
    if (f.path.size() > 2 && f.path.substr(f.path.size() - 2) == ".c") {
      cmd += " " + (dir / f.path).string();
    }
  }
  const fs::path exe = dir / "app";
  const fs::path errs = dir / "gcc_errors.txt";
  cmd += " -o " + exe.string() + " 2> " + errs.string();
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream in(errs);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ADD_FAILURE() << "gcc failed:\n" << text;
    return {};
  }
  const fs::path log = dir / "native.log";
  const std::string run = exe.string() + " > " + log.string();
  if (std::system(run.c_str()) != 0) {
    ADD_FAILURE() << "generated binary failed";
    return {};
  }
  std::ifstream in(log);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

TEST(NativeExecution, PipelineMatchesCoSimulationExactly) {
  if (!have_gcc()) GTEST_SKIP() << "no gcc available";

  synth::SynthOptions opt;
  opt.topology = synth::Topology::Pipeline;
  opt.processes = 5;
  opt.pes = 2;
  opt.seed = 77;
  const synth::SynthSystem sys = synth::build(opt);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);

  // Native run of the generated code.
  codegen::Options copt;
  copt.host_runtime = true;
  copt.host_horizon = 50'000'000;
  copt.workload.push_back(
      codegen::Injection{sys.input_port, 1'000, 10'000, 20, sys.msg, {64}});
  const auto bundle = codegen::generate(*sys.model, copt);
  ASSERT_NE(bundle.find("tut_runtime_host.c"), nullptr);
  ASSERT_NE(bundle.find("platform_glue.c"), nullptr);
  const std::string native_out = compile_and_run(
      bundle, fs::temp_directory_path() / "tut_native_pipeline");
  ASSERT_FALSE(native_out.empty());
  const auto native_log = sim::SimulationLog::parse(native_out);
  const auto native = profiler::analyze(info, native_log);

  // Reference: the C++ co-simulator under the identical workload.
  mapping::SystemView view(*sys.model);
  sim::Simulation simulation(view, {.horizon = 50'000'000});
  sys.inject_workload(simulation, 1'000, 10'000, 20);
  simulation.run();
  const auto reference = profiler::analyze(info, simulation.log());

  // The generated C and the EFSM runtime must agree exactly on what was
  // computed and communicated (they run the same model).
  EXPECT_EQ(native.process_cycles, reference.process_cycles);
  EXPECT_EQ(native.process_signals, reference.process_signals);
  EXPECT_EQ(native.total_signals(), reference.total_signals());
  EXPECT_TRUE(native.drops.empty());
}

TEST(NativeExecution, RandomDagMatchesCoSimulationExactly) {
  if (!have_gcc()) GTEST_SKIP() << "no gcc available";

  synth::SynthOptions opt;
  opt.topology = synth::Topology::RandomDag;
  opt.processes = 9;
  opt.pes = 3;
  opt.seed = 2024;
  const synth::SynthSystem sys = synth::build(opt);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);

  codegen::Options copt;
  copt.host_runtime = true;
  copt.host_horizon = 50'000'000;
  copt.workload.push_back(
      codegen::Injection{sys.input_port, 500, 5'000, 30, sys.msg, {64}});
  const auto bundle = codegen::generate(*sys.model, copt);
  const std::string native_out =
      compile_and_run(bundle, fs::temp_directory_path() / "tut_native_dag");
  ASSERT_FALSE(native_out.empty());
  const auto native = profiler::analyze(info, sim::SimulationLog::parse(native_out));

  mapping::SystemView view(*sys.model);
  sim::Simulation simulation(view, {.horizon = 50'000'000});
  sys.inject_workload(simulation, 500, 5'000, 30);
  simulation.run();
  const auto reference = profiler::analyze(info, simulation.log());

  EXPECT_EQ(native.process_cycles, reference.process_cycles);
  EXPECT_EQ(native.process_signals, reference.process_signals);
}

TEST(NativeExecution, TutmacRunsNativelyAndGroup1Dominates) {
  if (!have_gcc()) GTEST_SKIP() << "no gcc available";

  tutmac::Options topt;
  topt.horizon = 10'000'000;
  tutmac::System sys = tutmac::build(topt);

  codegen::Options copt;
  copt.host_runtime = true;
  copt.host_horizon = topt.horizon;
  const auto slots = topt.horizon / topt.slot_period;
  copt.workload.push_back(codegen::Injection{
      "pphy", topt.slot_period, topt.slot_period, slots, sys.radio_slot, {}});
  copt.workload.push_back(codegen::Injection{
      "pphy", topt.rx_period + 7'777, topt.rx_period,
      static_cast<std::size_t>(topt.horizon / topt.rx_period), sys.rx_frame,
      {256}});
  copt.workload.push_back(codegen::Injection{
      "puser", topt.msdu_period + 3'333, topt.msdu_period,
      static_cast<std::size_t>(topt.horizon / topt.msdu_period), sys.user_msdu,
      {512}});

  const auto bundle = codegen::generate(*sys.model, copt);
  const std::string native_out =
      compile_and_run(bundle, fs::temp_directory_path() / "tut_native_tutmac");
  ASSERT_FALSE(native_out.empty());

  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report =
      profiler::analyze(info, sim::SimulationLog::parse(native_out));

  // The native run reproduces the Table 4 ordering (absolute numbers differ
  // from the co-simulation: the host is a single serialized reference
  // processor, exactly like the paper's workstation profiling runs).
  ASSERT_EQ(report.execution.size(), 5u);
  EXPECT_GT(report.execution[0].proportion, 80.0);  // group1 dominates
  EXPECT_GT(report.execution[0].cycles, report.execution[1].cycles);
  EXPECT_GT(report.execution[1].cycles, report.execution[2].cycles);
  EXPECT_GT(report.execution[2].cycles, report.execution[3].cycles);
  EXPECT_EQ(report.execution[4].cycles, 0);  // environment
  EXPECT_TRUE(report.drops.empty());
}

TEST(NativeExecution, WorkloadThroughUnconnectedBoundaryThrows) {
  synth::SynthSystem sys = synth::build({});
  codegen::Options copt;
  copt.host_runtime = true;
  copt.workload.push_back(
      codegen::Injection{"nosuchport", 0, 0, 1, sys.msg, {}});
  EXPECT_THROW((void)codegen::generate(*sys.model, copt), std::runtime_error);
}
