// Property tests on generated systems: every synthetic system must
// validate, simulate deterministically, conserve messages, and survive the
// XML round trip with identical behaviour.
#include <gtest/gtest.h>

#include "profiler/profiler.hpp"
#include "synth/synth.hpp"
#include "uml/serialize.hpp"
#include "uml/validation.hpp"

using namespace tut;
using namespace tut::synth;

namespace {

struct Shape {
  Topology topology;
  std::size_t processes;
  std::size_t pes;
  std::size_t segments;
  std::uint32_t seed;
};

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  const Shape& s = info.param;
  return std::string(to_string(s.topology)) + "_" +
         std::to_string(s.processes) + "p_" + std::to_string(s.pes) + "pe_" +
         std::to_string(s.segments) + "seg_s" + std::to_string(s.seed);
}

SynthOptions to_options(const Shape& s) {
  SynthOptions opt;
  opt.topology = s.topology;
  opt.processes = s.processes;
  opt.pes = s.pes;
  opt.segments = s.segments;
  opt.seed = s.seed;
  return opt;
}

/// Runs a standard workload: 20 messages, 10 us apart, 20 ms horizon (ample
/// slack for every topology/size in the sweep to drain).
std::unique_ptr<sim::Simulation> run_standard(const SynthSystem& sys,
                                              const mapping::SystemView& view) {
  auto simulation = std::make_unique<sim::Simulation>(
      view, sim::Config{.horizon = 20'000'000});
  sys.inject_workload(*simulation, 1'000, 10'000, 20);
  simulation->run();
  return simulation;
}

struct Counts {
  std::size_t sends_to_procs = 0;
  std::size_t receives = 0;
  std::size_t drops = 0;
  std::size_t env_sends = 0;  // process -> environment
};

Counts count_log(const sim::SimulationLog& log) {
  Counts c;
  for (const auto& r : log.records()) {
    switch (r.kind) {
      case sim::LogRecord::Kind::Send:
        if (r.peer == sim::kEnvironment) {
          if (r.process != sim::kEnvironment) ++c.env_sends;
        } else {
          ++c.sends_to_procs;
        }
        break;
      case sim::LogRecord::Kind::Receive:
        ++c.receives;
        break;
      case sim::LogRecord::Kind::Drop:
        ++c.drops;
        break;
      default:
        break;
    }
  }
  return c;
}

}  // namespace

class SynthProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(SynthProperty, ValidatesCleanly) {
  const SynthSystem sys = build(to_options(GetParam()));
  const auto result = profile::make_validator().run(*sys.model);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_EQ(result.warning_count(), 0u) << result.to_string();
}

TEST_P(SynthProperty, ConservesMessages) {
  const SynthSystem sys = build(to_options(GetParam()));
  mapping::SystemView view(*sys.model);
  const auto simulation = run_standard(sys, view);
  const Counts c = count_log(simulation->log());

  // Every send towards a process is eventually received (ample horizon).
  EXPECT_EQ(c.sends_to_procs, c.receives);
  // Nothing is dropped: every process handles Msg in every state.
  EXPECT_EQ(c.drops, 0u);
  // Every injected message leaves through a terminal process: 20 in, 20 out.
  EXPECT_EQ(c.env_sends, 20u);
}

TEST_P(SynthProperty, DeterministicAcrossRebuilds) {
  const SynthSystem a = build(to_options(GetParam()));
  const SynthSystem b = build(to_options(GetParam()));
  mapping::SystemView va(*a.model), vb(*b.model);
  const auto sa = run_standard(a, va);
  const auto sb = run_standard(b, vb);
  EXPECT_EQ(sa->log().to_text(), sb->log().to_text());
}

TEST_P(SynthProperty, XmlRoundTripPreservesBehavior) {
  const SynthSystem sys = build(to_options(GetParam()));
  mapping::SystemView view(*sys.model);
  const auto original = run_standard(sys, view);

  const auto restored = uml::from_xml_string(uml::to_xml_string(*sys.model));
  mapping::SystemView restored_view(*restored);
  auto replay = std::make_unique<sim::Simulation>(
      restored_view, sim::Config{.horizon = 20'000'000});
  replay->inject_periodic(1'000, 10'000, 20, sys.input_port,
                          *restored->find_signal("Msg"), {64});
  replay->run();

  EXPECT_EQ(original->log().to_text(), replay->log().to_text());
}

TEST_P(SynthProperty, PeBusyTimeMatchesLog) {
  const SynthSystem sys = build(to_options(GetParam()));
  mapping::SystemView view(*sys.model);
  const auto simulation = run_standard(sys, view);

  // Reconstruct per-PE busy time from Run records (cooperative scheduling:
  // no overhead, so stats must equal the logged durations exactly).
  std::map<std::string, sim::Time> from_log;
  for (const auto& r : simulation->log().records()) {
    if (r.kind != sim::LogRecord::Kind::Run) continue;
    const uml::Property* proc = nullptr;
    for (const uml::Property* p : view.app().processes()) {
      if (p->name() == r.process) proc = p;
    }
    ASSERT_NE(proc, nullptr) << r.process;
    from_log[view.instance_for_process(*proc)->name()] += r.duration;
  }
  for (const auto& [pe, stats] : simulation->pe_stats()) {
    EXPECT_EQ(stats.busy_time, from_log[pe]) << pe;
    EXPECT_EQ(stats.overhead_time, 0u) << pe;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SynthProperty,
    ::testing::Values(Shape{Topology::Pipeline, 4, 2, 1, 1},
                      Shape{Topology::Pipeline, 8, 3, 2, 7},
                      Shape{Topology::Pipeline, 16, 4, 3, 42},
                      Shape{Topology::Star, 5, 2, 1, 3},
                      Shape{Topology::Star, 9, 3, 2, 11},
                      Shape{Topology::RandomDag, 6, 2, 2, 5},
                      Shape{Topology::RandomDag, 12, 4, 2, 23},
                      Shape{Topology::RandomDag, 24, 6, 3, 99}),
    shape_name);

// ---------------------------------------------------------------------------
// Topology-specific behaviour
// ---------------------------------------------------------------------------

TEST(SynthPipeline, EveryStageHandlesEveryMessage) {
  SynthOptions opt;
  opt.topology = Topology::Pipeline;
  opt.processes = 5;
  const SynthSystem sys = build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = run_standard(sys, view);

  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());
  for (std::size_t i = 0; i < 5; ++i) {
    // 20 injected messages + the start step (0 cycles) per process.
    const std::string name = "p" + std::to_string(i);
    ASSERT_TRUE(report.process_cycles.count(name)) << name;
    EXPECT_GT(report.process_cycles.at(name), 0) << name;
    EXPECT_EQ(report.process_signals.count({name, "env"}), i == 4 ? 1u : 0u);
  }
  EXPECT_EQ(report.process_signals.at({"env", "p0"}), 20u);
  EXPECT_EQ(report.process_signals.at({"p0", "p1"}), 20u);
  EXPECT_EQ(report.process_signals.at({"p3", "p4"}), 20u);
}

TEST(SynthStar, HubDistributesRoundRobin) {
  SynthOptions opt;
  opt.topology = Topology::Star;
  opt.processes = 5;  // hub + 4 spokes
  const SynthSystem sys = build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = run_standard(sys, view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());

  // 20 messages over 4 spokes: 5 each.
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ((report.process_signals.at({"p0", "p" + std::to_string(i)})), 5u);
  }
}

TEST(SynthRandomDag, EdgesAlwaysPointForward) {
  for (std::uint32_t seed : {1u, 2u, 3u, 17u, 1000u}) {
    SynthOptions opt;
    opt.topology = Topology::RandomDag;
    opt.processes = 10;
    opt.seed = seed;
    const SynthSystem sys = build(opt);
    // Forward-only edges guarantee drainage: simulate and require that all
    // messages leave.
    mapping::SystemView view(*sys.model);
    const auto simulation = run_standard(sys, view);
    EXPECT_EQ(count_log(simulation->log()).env_sends, 20u) << seed;
  }
}

TEST(SynthOptionsValidation, RejectsDegenerateShapes) {
  SynthOptions opt;
  opt.processes = 1;
  EXPECT_THROW((void)build(opt), std::invalid_argument);
  opt.processes = 4;
  opt.pes = 0;
  EXPECT_THROW((void)build(opt), std::invalid_argument);
  opt.pes = 2;
  opt.segments = 0;
  EXPECT_THROW((void)build(opt), std::invalid_argument);
}

TEST(SynthSeeds, DifferentSeedsChangeCosts) {
  SynthOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const SynthSystem sa = build(a);
  const SynthSystem sb = build(b);
  mapping::SystemView va(*sa.model), vb(*sb.model);
  const auto ra = run_standard(sa, va);
  const auto rb = run_standard(sb, vb);
  EXPECT_NE(ra->log().to_text(), rb->log().to_text());
}

TEST(SynthScale, SixtyFourProcessSoC) {
  SynthOptions opt;
  opt.topology = Topology::RandomDag;
  opt.processes = 64;
  opt.pes = 8;
  opt.segments = 4;
  opt.seed = 4242;
  const SynthSystem sys = build(opt);
  EXPECT_TRUE(profile::make_validator().run(*sys.model).ok());
  mapping::SystemView view(*sys.model);
  const auto simulation = run_standard(sys, view);
  EXPECT_EQ(count_log(simulation->log()).drops, 0u);
  EXPECT_EQ(count_log(simulation->log()).env_sends, 20u);
}
