// Lockstep tests for the native code-generation backend: a generated
// NativeImage must be indistinguishable from the bytecode interpreter —
// per-step StepResult equality, identical exception types and messages,
// byte-identical SimulationLogs on TUTMAC (with and without fault plans)
// and byte-identical campaign aggregates across thread counts. Every test
// that needs a C++ compiler skips with a notice when none is installed.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "codegen/native.hpp"
#include "efsm/machine.hpp"
#include "efsm/program.hpp"
#include "fixtures.hpp"
#include "sim/batch.hpp"
#include "sim/campaign.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

#define REQUIRE_COMPILER()                            \
  if (codegen::NativeImage::find_compiler().empty()) \
  GTEST_SKIP() << "no C++ compiler on this host"

std::string describe(const efsm::StepResult& r) {
  std::string out = "fired=" + std::to_string(r.fired) +
                    " cycles=" + std::to_string(r.compute_cycles) +
                    " taken=" + std::to_string(r.transitions_taken);
  for (const efsm::Send& s : r.sends) {
    out += " send(" + s.port + "," +
           (s.signal != nullptr ? s.signal->name() : "?");
    for (const long a : s.args) out += "," + std::to_string(a);
    out += ")";
  }
  for (const efsm::TimerOp& t : r.timers) {
    out += t.kind == efsm::TimerOp::Kind::Set
               ? " set(" + t.name + "," + std::to_string(t.delay) + ")"
               : " reset(" + t.name + ")";
  }
  return out;
}

/// Exception type + message, or "ok" — so both backends' failure behaviour
/// can be compared as strings.
template <typename F>
std::string outcome(F&& f) {
  try {
    f();
    return "ok";
  } catch (const efsm::EvalError& e) {
    return std::string("EvalError: ") + e.what();
  } catch (const efsm::LivelockError& e) {
    return std::string("LivelockError: ") + e.what();
  } catch (const std::out_of_range& e) {
    return std::string("out_of_range: ") + e.what();
  } catch (const std::logic_error& e) {
    return std::string("logic_error: ") + e.what();
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
}

std::uint32_t proc_index(const sim::CompiledModel& model,
                         const std::string& name) {
  for (std::uint32_t i = 0; i < model.procs().size(); ++i) {
    if (model.procs()[i].name == name) return i;
  }
  ADD_FAILURE() << "no process '" << name << "'";
  return 0;
}

/// MiniSystem lowered once and wrapped in a native image; shared because
/// each image build shells out to the compiler. The SystemView must outlive
/// the CompiledModel (it is borrowed), hence the unique_ptr member.
struct MiniNative {
  test::MiniSystem sys;
  std::unique_ptr<mapping::SystemView> view;
  std::shared_ptr<const sim::CompiledModel> model;
  std::shared_ptr<const codegen::NativeImage> image;

  MiniNative() {
    view = std::make_unique<mapping::SystemView>(sys.model);
    model = sim::CompiledModel::build(*view);
    image = codegen::NativeImage::build(model);
  }
};

MiniNative& mini() {
  static MiniNative* m = new MiniNative();  // leaked: image dlclose at exit
  return *m;
}

/// Drives the bytecode interpreter and the native image in lock step,
/// asserting identical StepResults, states and failure messages after
/// every operation.
struct NativeLockStep {
  efsm::CompiledInstance code;
  codegen::NativeInstance native;

  NativeLockStep(const MiniNative& m, const std::string& proc)
      : NativeLockStep(*m.model, m.image, proc_index(*m.model, proc)) {}
  NativeLockStep(const sim::CompiledModel& model,
                 const std::shared_ptr<const codegen::NativeImage>& image,
                 std::uint32_t proc)
      : code(*model.procs()[proc].machine, model.procs()[proc].name),
        native(image, image->source().proc_machine[proc],
               model.procs()[proc].name) {}

  void start() { check("start", [&] { return code.start(); },
                       [&] { return native.start(); }); }
  void reset() { check("reset", [&] { return code.reset(); },
                       [&] { return native.reset(); }); }
  void deliver(const efsm::Event& e) {
    check("deliver", [&] { return code.deliver(e); },
          [&] { return native.deliver(e); });
  }
  void timer(const std::string& t) {
    check("timer " + t, [&] { return code.timer_fired(t); },
          [&] { return native.timer_fired(t); });
  }
  void rewind() {
    code.rewind();
    native.rewind();
    compare_state("rewind");
  }
  void variable(const std::string& name) {
    std::string a = outcome([&] { (void)code.variable(name); });
    std::string b = outcome([&] { (void)native.variable(name); });
    EXPECT_EQ(a, b) << "variable " << name;
    if (a == "ok") {
      EXPECT_EQ(code.variable(name), native.variable(name)) << name;
    }
  }

  template <typename A, typename B>
  void check(const std::string& what, A&& a, B&& b) {
    std::string sa, sb;
    const std::string ra = outcome([&] { sa = describe(a()); });
    const std::string rb = outcome([&] { sb = describe(b()); });
    EXPECT_EQ(ra, rb) << what;
    if (ra == "ok") {
      EXPECT_EQ(sa, sb) << what;
    }
    compare_state(what);
  }

  void compare_state(const std::string& what) {
    EXPECT_EQ(code.started(), native.started()) << what;
    EXPECT_EQ(code.state_name(), native.state_name()) << what;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Per-step lockstep on the MiniSystem machines
// ---------------------------------------------------------------------------

TEST(NativeLockstep, ControllerTimersAndSends) {
  REQUIRE_COMPILER();
  MiniNative& m = mini();
  NativeLockStep ls(m, "ctrl");
  ls.start();                              // entry: set_timer tick
  ls.timer("tick");                        // Idle -> Tx: compute + send Req
  ls.timer("tick");                        // Tx -> Tx self-loop
  ls.deliver({m.sys.req, "out", {3}});     // no matching trigger
  ls.deliver({m.sys.rsp, "out", {0}});     // Tx -> Idle
  ls.timer("zzz");                         // unknown timer: discarded
  ls.timer("");                            // completion poll: none pending
  ls.reset();                              // restart from Idle
  ls.timer("tick");
  ls.rewind();                             // back to not-started
  ls.start();
}

TEST(NativeLockstep, DspVariablesAndParamOverlay) {
  REQUIRE_COMPILER();
  MiniNative& m = mini();
  NativeLockStep ls(m, "dsp1");
  ls.start();
  ls.variable("n");
  ls.deliver({m.sys.req, "in", {5}});      // compute 400*5, n+=1, forward
  ls.deliver({m.sys.req, "in", {}});       // missing arg defaults to 0
  ls.variable("n");
  ls.deliver({m.sys.rsp, "hw", {0}});      // hw answer path
  ls.deliver({m.sys.req, "hw", {1}});      // wrong port: no trigger
  ls.variable("n");
  ls.variable("nosuch");                   // out_of_range on both
  ls.reset();
  ls.variable("n");                        // back to declared initial
  ls.deliver({m.sys.req, "in", {2}});
  ls.variable("n");
}

TEST(NativeLockstep, CrcAndErrorsBeforeStart) {
  REQUIRE_COMPILER();
  MiniNative& m = mini();
  NativeLockStep ls(m, "crc");
  // Stepping a not-started instance throws the same logic_error on both
  // backends (message includes the instance name).
  ls.deliver({m.sys.req, "in", {4}});
  ls.timer("t");
  ls.start();
  ls.deliver({m.sys.req, "in", {4}});      // compute 8*4, answer Rsp(1)
  ls.deliver({m.sys.rsp, "in", {0}});      // provided-direction mismatch
}

TEST(NativeLockstep, EvalErrorsMatchInterpreter) {
  REQUIRE_COMPILER();
  // A MiniSystem variant whose Controller grows failing transitions: a
  // division/modulo the delivered argument can zero, and a guard over an
  // undeclared identifier. Exception types and messages must match the
  // interpreter's exactly.
  test::MiniSystem sys;
  auto& csm = *sys.ctrl_comp->behavior();
  uml::State& idle = *csm.states()[0];
  uml::State& tx = *csm.states()[1];
  sys.model.add_transition(csm, idle, idle, *sys.req, "out")
      .add_effect(uml::Action::compute("100 / len"));
  sys.model.add_transition(csm, idle, idle, *sys.rsp, "out")
      .add_effect(uml::Action::compute("7 % status"));
  sys.model.add_transition(csm, tx, tx, *sys.req, "out")
      .set_guard("ghost > 0");

  mapping::SystemView view(sys.model);
  const auto model = sim::CompiledModel::build(view);
  const auto image = codegen::NativeImage::build(model);

  NativeLockStep ls(*model, image, proc_index(*model, "ctrl"));
  ls.start();
  ls.deliver({sys.req, "out", {4}});   // 100 / 4: fires cleanly
  ls.deliver({sys.req, "out", {0}});   // division by zero on both backends
  ls.deliver({sys.rsp, "out", {0}});   // modulo by zero on both backends
  ls.deliver({sys.req, "out", {5}});   // recovered identically
  ls.timer("tick");                    // Idle -> Tx
  ls.deliver({sys.req, "out", {1}});   // guard: unknown identifier 'ghost'
  ls.deliver({sys.rsp, "out", {0}});   // Tx -> Idle still works after
}

// ---------------------------------------------------------------------------
// Full-log byte-identity on TUTMAC
// ---------------------------------------------------------------------------

namespace {

const tutmac::System& shared_tutmac() {
  static tutmac::System sys = [] {
    tutmac::Options opt;
    opt.horizon = 2'000'000;
    return tutmac::build(opt);
  }();
  return sys;
}

std::shared_ptr<const sim::CompiledModel> shared_tutmac_model() {
  static auto model = [] {
    static mapping::SystemView view(*shared_tutmac().model);
    return sim::CompiledModel::build(view);
  }();
  return model;
}

std::shared_ptr<const codegen::NativeImage> shared_tutmac_image() {
  static auto image = codegen::NativeImage::build(shared_tutmac_model());
  return image;
}

sim::FaultPlan degraded_plan() {
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.watchdog_timeout = 300'000;
  plan.max_retries = 2;
  plan.retry_backoff = 150;
  plan.pe_faults.push_back({"processor2", 200'000, 900'000});
  plan.bit_errors.push_back({"hibisegment1", 20'000});
  return plan;
}

}  // namespace

TEST(NativeBackend, TutmacLogByteIdentical) {
  REQUIRE_COMPILER();
  sim::Config config;
  config.horizon = 2'000'000;

  sim::Simulation interp(shared_tutmac_model(), config);
  shared_tutmac().inject_workload(interp);
  interp.run();

  sim::Simulation native(shared_tutmac_image(), config);
  shared_tutmac().inject_workload(native);
  native.run();

  EXPECT_EQ(interp.log().to_text(), native.log().to_text());
  EXPECT_EQ(interp.events_dispatched(), native.events_dispatched());
}

TEST(NativeBackend, TutmacFaultPlanLogByteIdentical) {
  REQUIRE_COMPILER();
  sim::Config config;
  config.horizon = 2'000'000;
  config.faults = degraded_plan();

  sim::Simulation interp(shared_tutmac_model(), config);
  shared_tutmac().inject_workload(interp);
  interp.run();

  sim::Simulation native(shared_tutmac_image(), config);
  shared_tutmac().inject_workload(native);
  native.run();

  ASSERT_FALSE(interp.log().to_text().empty());
  EXPECT_EQ(interp.log().to_text(), native.log().to_text());
}

TEST(NativeBackend, SimulationResetStaysByteIdentical) {
  REQUIRE_COMPILER();
  // One native context reused across runs must keep reproducing the fresh
  // log (the batch/campaign runners depend on reset semantics).
  sim::Config config;
  config.horizon = 2'000'000;
  sim::Simulation fresh(shared_tutmac_image(), config);
  shared_tutmac().inject_workload(fresh);
  fresh.run();
  const std::string expected = fresh.log().to_text();

  sim::Simulation reused(shared_tutmac_image(), config);
  for (int round = 0; round < 3; ++round) {
    if (round > 0) reused.reset(config);
    shared_tutmac().inject_workload(reused);
    reused.run();
    EXPECT_EQ(reused.log().to_text(), expected) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Batch and campaign integration
// ---------------------------------------------------------------------------

TEST(NativeBackend, BatchHashesAndProvenance) {
  REQUIRE_COMPILER();
  MiniNative& m = mini();
  std::vector<sim::BatchScenario> scenarios(3);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].name = "s" + std::to_string(i);
    scenarios[i].config.horizon = 50'000;
    scenarios[i].config.faults.seed = i;
  }
  sim::BatchOptions options;
  options.threads = 2;
  const auto interp = sim::BatchRunner(m.model, options).run(scenarios);
  const auto native = sim::BatchRunner(m.image, options).run(scenarios);
  ASSERT_EQ(interp.size(), native.size());
  for (std::size_t i = 0; i < interp.size(); ++i) {
    EXPECT_EQ(interp[i].error, "");
    EXPECT_EQ(native[i].error, "");
    EXPECT_EQ(interp[i].log_hash, native[i].log_hash) << i;
    EXPECT_EQ(interp[i].events, native[i].events) << i;
    EXPECT_EQ(interp[i].backend, "interpreter");
    EXPECT_EQ(interp[i].image_hash, 0u);
    EXPECT_EQ(native[i].backend, "native");
    EXPECT_EQ(native[i].image_hash, m.image->content_hash());
  }
}

TEST(NativeBackend, CampaignAggregateMatchesAcrossBackendsAndThreads) {
  REQUIRE_COMPILER();
  sim::CampaignSpec spec;
  spec.name = "native-lockstep";
  spec.base.horizon = 2'000'000;
  spec.base_seed = 42;
  spec.plans.emplace_back("deg", degraded_plan());
  spec.axes.push_back({"seed", {0, 1, 2}});
  spec.axes.push_back({"slotPeriod", {50'000, 100'000}});
  spec.axes.push_back({"plan", {0, 1}});

  const auto setup = [](sim::Simulation& simulation,
                        const sim::Scenario& sc) {
    const tutmac::System& sys = shared_tutmac();
    tutmac::Options o = sys.options;
    o.horizon = simulation.config().horizon;
    o.slot_period = static_cast<sim::Time>(
        sc.param("slotPeriod", static_cast<long>(o.slot_period)));
    sys.inject_workload(simulation, o);
  };

  const sim::CampaignRunner interp({shared_tutmac_model()}, setup);
  const sim::CampaignRunner native({std::shared_ptr<const sim::BackendImage>(
                                       shared_tutmac_image())},
                                   setup);

  sim::CampaignOptions opt;
  opt.threads = 1;
  const std::string baseline = interp.run(spec, opt).aggregate.serialize();

  for (const std::size_t threads : {1u, 2u, 4u}) {
    sim::CampaignOptions nopt;
    nopt.threads = threads;
    std::vector<std::uint64_t> provenance;
    nopt.on_summary = [&provenance](const sim::ScenarioSummary& s) {
      provenance.push_back(s.backend);
    };
    const sim::CampaignResult result = native.run(spec, nopt);
    EXPECT_EQ(result.aggregate.serialize(), baseline)
        << "threads=" << threads;
    ASSERT_EQ(provenance.size(), spec.total());
    for (const std::uint64_t p : provenance) {
      EXPECT_EQ(p, shared_tutmac_image()->content_hash());
    }
  }

  // Interpreter summaries carry provenance 0 (no image).
  sim::CampaignOptions iopt;
  iopt.threads = 2;
  std::uint64_t max_backend = 0;
  iopt.on_summary = [&max_backend](const sim::ScenarioSummary& s) {
    max_backend = std::max(max_backend, s.backend);
  };
  EXPECT_EQ(interp.run(spec, iopt).aggregate.serialize(), baseline);
  EXPECT_EQ(max_backend, 0u);
}

// ---------------------------------------------------------------------------
// Emission and cache behaviour
// ---------------------------------------------------------------------------

TEST(NativeEmit, DeterministicAndStructured) {
  // No compiler needed: emission is pure. Equal models must emit equal
  // sources (the content-addressed cache depends on it).
  test::MiniSystem sys_a;
  mapping::SystemView view_a(sys_a.model);
  const auto model_a = sim::CompiledModel::build(view_a);
  test::MiniSystem sys_b;
  mapping::SystemView view_b(sys_b.model);
  const auto model_b = sim::CompiledModel::build(view_b);

  const codegen::NativeSource a = codegen::emit_native(*model_a);
  const codegen::NativeSource b = codegen::emit_native(*model_b);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.proc_machine.size(), model_a->procs().size());
  // dsp1/dsp2 share the DspFilter behaviour: 4 processes, 3 machines.
  EXPECT_EQ(a.machines.size(), 3u);
  EXPECT_EQ(a.proc_machine[proc_index(*model_a, "dsp1")],
            a.proc_machine[proc_index(*model_a, "dsp2")]);
  EXPECT_NE(a.code.find("tut_native_v1_deliver"), std::string::npos);
  EXPECT_NE(a.code.find("tut_native_v1_abi"), std::string::npos);
}

TEST(NativeEmit, RangeFactsElideProvenDivisionChecks) {
  // m is constant 5, so the value-range analysis proves the divisor nonzero
  // and the emitted program carries an unguarded division — no ChkDiv trap
  // (tn_fail(3, ...)) anywhere in the source.
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  dsm.declare_variable("m", 5);
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .add_effect(uml::Action::compute("100 / m"));
  mapping::SystemView view(sys.model);
  const auto model = sim::CompiledModel::build(view);
  const codegen::NativeSource src = codegen::emit_native(*model);
  EXPECT_NE(src.code.find(" / "), std::string::npos);
  EXPECT_EQ(src.code.find("tn_fail(3"), std::string::npos) << src.code;
}

TEST(NativeEmit, UnprovenDivisorKeepsTheCheck) {
  // n is [0, +inf) at rest: the divisor range contains 0, the check stays.
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .add_effect(uml::Action::compute("100 / n"));
  mapping::SystemView view(sys.model);
  const auto model = sim::CompiledModel::build(view);
  const codegen::NativeSource src = codegen::emit_native(*model);
  EXPECT_NE(src.code.find("tn_fail(3"), std::string::npos);
}

TEST(NativeLockstep, ElidedChecksAndFoldedGuardsStayInvisible) {
  REQUIRE_COMPILER();
  // Range-dead guard (n < 0 is pruned), range-true guard (n >= 0 is
  // folded), and an elidable division — the native image must still be
  // step-for-step identical to the interpreter.
  test::MiniSystem sys;
  auto& dsm = *sys.dsp_comp->behavior();
  auto& idle = *dsm.states()[0];
  auto& cold = sys.model.add_state(dsm, "Cold");
  dsm.declare_variable("m", 5);
  sys.model.add_transition(dsm, idle, cold, *sys.rsp, "in")
      .set_guard("n < 0");
  sys.model.add_transition(dsm, idle, idle, *sys.rsp, "in")
      .set_guard("n >= 0")
      .add_effect(uml::Action::compute("100 / m"))
      .add_effect(uml::Action::assign("n", "n + 2"));
  auto view = std::make_unique<mapping::SystemView>(sys.model);
  const auto model = sim::CompiledModel::build(*view);
  const auto image = codegen::NativeImage::build(model);
  NativeLockStep ls(*model, image, proc_index(*model, "dsp1"));
  ls.start();
  ls.variable("n");
  ls.deliver({sys.rsp, "in", {0}});  // dead guard skipped, folded guard fires
  ls.variable("n");
  ls.deliver({sys.req, "in", {5}});  // the fixture's own n + 1 path
  ls.deliver({sys.rsp, "in", {1}});
  ls.variable("n");
  ls.variable("m");
  EXPECT_EQ(ls.code.state_name(), "Idle");  // Cold was never entered
}

TEST(NativeImage, ContentHashedCacheHitsOnRebuild) {
  REQUIRE_COMPILER();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tut-native-test-cache";
  std::filesystem::remove_all(dir);

  codegen::NativeOptions opt;
  opt.cache_dir = dir.string();
  const auto first = codegen::NativeImage::build(mini().model, opt);
  EXPECT_FALSE(first->cache_hit());
  const auto second = codegen::NativeImage::build(mini().model, opt);
  EXPECT_TRUE(second->cache_hit());
  EXPECT_EQ(first->content_hash(), second->content_hash());
  EXPECT_EQ(first->library_path(), second->library_path());
  EXPECT_TRUE(std::filesystem::exists(first->library_path()));

  std::filesystem::remove_all(dir);
}
