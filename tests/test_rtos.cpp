// Tests for the RTOS extension: preemptive priority scheduling on processing
// elements with context-switch cost (the paper's stated future work,
// parameterized through the Component tags Scheduling/ContextSwitchCycles).
#include <gtest/gtest.h>

#include "appmodel/appmodel.hpp"
#include "mapping/mapping.hpp"
#include "platform/platform.hpp"
#include "profile/tut_profile.hpp"
#include "sim/simulator.hpp"

using namespace tut;
using namespace tut::sim;

namespace {

/// One 100 MHz CPU (1 cycle = 10 ticks) hosting a low-priority worker
/// (10'000-cycle jobs, completion observable via a Done signal) and a
/// high-priority responder (100-cycle pings answered with Pong). Both are
/// driven from boundary ports.
struct RtosSystem {
  uml::Model model{"rtos"};
  profile::TutProfile prof = profile::install(model);
  uml::Signal* job = nullptr;
  uml::Signal* done = nullptr;
  uml::Signal* ping = nullptr;
  uml::Signal* pong = nullptr;

  RtosSystem(const std::string& scheduling, long ctx_switch_cycles,
             long mid_priority_ping = 0) {
    job = &model.create_signal("Job");
    done = &model.create_signal("Done");
    ping = &model.create_signal("Ping");
    pong = &model.create_signal("Pong");
    auto& mid_sig = model.create_signal("MidPing");
    auto& mid_done = model.create_signal("MidDone");

    appmodel::ApplicationBuilder ab(model, prof);
    auto& app = ab.application("RtosApp");

    auto& worker = ab.component("Worker");
    model.add_port(worker, "in").provide(*job).require(*done);
    {
      auto& sm = *worker.behavior();
      auto& idle = model.add_state(sm, "Idle", true);
      model.add_transition(sm, idle, idle, *job, "in")
          .add_effect(uml::Action::compute("10000"))
          .add_effect(uml::Action::send("in", *done));
    }
    auto& urgent = ab.component("Urgent");
    model.add_port(urgent, "in").provide(*ping).require(*pong);
    {
      auto& sm = *urgent.behavior();
      auto& idle = model.add_state(sm, "Idle", true);
      model.add_transition(sm, idle, idle, *ping, "in")
          .add_effect(uml::Action::compute("100"))
          .add_effect(uml::Action::send("in", *pong));
    }
    auto& mid = ab.component("Mid");
    model.add_port(mid, "in").provide(mid_sig).require(mid_done);
    {
      auto& sm = *mid.behavior();
      auto& idle = model.add_state(sm, "Idle", true);
      model.add_transition(sm, idle, idle, mid_sig, "in")
          .add_effect(uml::Action::compute("1000"))
          .add_effect(uml::Action::send("in", mid_done));
    }

    auto& p_worker = ab.process("worker", worker, {{"Priority", "1"}});
    auto& p_urgent = ab.process("urgent", urgent, {{"Priority", "5"}});
    auto& p_mid = ab.process(
        "mid", mid,
        {{"Priority", std::to_string(mid_priority_ping > 0 ? mid_priority_ping
                                                           : 3)}});

    model.add_port(app, "pjob").provide(*job);
    model.add_port(app, "pping").provide(*ping);
    model.add_port(app, "pmid").provide(mid_sig);
    model.add_port(app, "pout");
    model.connect_boundary(app, "pjob", "worker", "in");
    model.connect_boundary(app, "pping", "urgent", "in");
    model.connect_boundary(app, "pmid", "mid", "in");

    platform::PlatformBuilder pb(model, prof);
    pb.platform("RtosBoard");
    auto& cpu = pb.component_type(
        "RtosCpu", {{"Type", "general"},
                    {"Frequency", "100"},
                    {"Scheduling", scheduling},
                    {"ContextSwitchCycles",
                     std::to_string(ctx_switch_cycles)}});
    auto& inst = pb.instance("cpu", cpu);

    mapping::MappingBuilder mb(model, prof);
    auto& g1 = ab.group("g_worker");
    auto& g2 = ab.group("g_urgent");
    auto& g3 = ab.group("g_mid");
    ab.assign(p_worker, g1);
    ab.assign(p_urgent, g2);
    ab.assign(p_mid, g3);
    mb.map(g1, inst);
    mb.map(g2, inst);
    mb.map(g3, inst);
  }
};

/// Time of the first Send record of `signal` from `process`, or 0.
Time send_time(const SimulationLog& log, const std::string& process,
               const std::string& signal) {
  for (const auto& r : log.records()) {
    if (r.kind == LogRecord::Kind::Send && r.process == process &&
        r.signal == signal) {
      return r.time;
    }
  }
  return 0;
}

}  // namespace

TEST(RtosScheduling, ProfileValidatesSchedulingTags) {
  RtosSystem sys(profile::tags::SchedulingPreemptive, 50);
  const auto result = profile::make_validator().run(sys.model);
  EXPECT_TRUE(result.ok()) << result.to_string();

  // An invalid enumerator is rejected.
  uml::Model bad{"bad"};
  auto prof = profile::install(bad);
  auto& cls = bad.create_class("C");
  cls.apply(*prof.component, {{"Scheduling", "fifo"}});
  EXPECT_FALSE(profile::make_validator().run(bad).ok());
}

TEST(RtosScheduling, CooperativeRunsToCompletion) {
  RtosSystem sys(profile::tags::SchedulingCooperative, 0);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 500'000});
  sim.inject(1'000, "pjob", *sys.job);   // worker busy 1'000..101'000
  sim.inject(2'000, "pping", *sys.ping); // must wait for the worker
  sim.run();

  // Worker: 10'000 cycles at 100 MHz = 100'000 ticks, Done at 101'000.
  EXPECT_EQ(send_time(sim.log(), "worker", "Done"), 101'000u);
  // Urgent runs only after the worker finished: Pong at 101'000 + 1'000.
  EXPECT_EQ(send_time(sim.log(), "urgent", "Pong"), 102'000u);
  EXPECT_EQ(sim.pe_stats().at("cpu").preemptions, 0u);
  EXPECT_EQ(sim.pe_stats().at("cpu").overhead_time, 0u);
}

TEST(RtosScheduling, PreemptiveServesHighPriorityImmediately) {
  RtosSystem sys(profile::tags::SchedulingPreemptive, 0);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 500'000});
  sim.inject(1'000, "pjob", *sys.job);
  sim.inject(2'000, "pping", *sys.ping);
  sim.run();

  // Urgent preempts at 2'000 and answers at 3'000.
  EXPECT_EQ(send_time(sim.log(), "urgent", "Pong"), 3'000u);
  // The worker resumes and still finishes its full compute: preempted with
  // 99'000 ticks remaining, resumed at 3'000 -> Done at 102'000.
  EXPECT_EQ(send_time(sim.log(), "worker", "Done"), 102'000u);
  EXPECT_EQ(sim.pe_stats().at("cpu").preemptions, 1u);
  EXPECT_EQ(sim.pe_stats().at("cpu").overhead_time, 0u);
}

TEST(RtosScheduling, ContextSwitchCostIsAccounted) {
  // 50 cycles at 100 MHz = 500 ticks per switch; two switches per
  // preemption (into the preemptor, back into the worker).
  RtosSystem sys(profile::tags::SchedulingPreemptive, 50);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 500'000});
  sim.inject(1'000, "pjob", *sys.job);
  sim.inject(2'000, "pping", *sys.ping);
  sim.run();

  EXPECT_EQ(send_time(sim.log(), "urgent", "Pong"), 3'500u);
  EXPECT_EQ(send_time(sim.log(), "worker", "Done"), 103'000u);
  EXPECT_EQ(sim.pe_stats().at("cpu").preemptions, 1u);
  EXPECT_EQ(sim.pe_stats().at("cpu").overhead_time, 1'000u);
}

TEST(RtosScheduling, EqualPriorityDoesNotPreempt) {
  RtosSystem sys(profile::tags::SchedulingPreemptive, 0);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 500'000});
  // mid (priority 3) cannot preempt urgent (priority 5); urgent can preempt
  // mid. Also a second ping cannot preempt the first urgent step (equal).
  sim.inject(1'000, "pmid", *sys.model.find_signal("MidPing"));
  sim.inject(2'000, "pping", *sys.ping);
  sim.run();
  // mid runs 1'000..11'000 (1'000 cycles = 10'000 ticks); urgent preempts at
  // 2'000, Pong at 3'000; mid finishes at 12'000.
  EXPECT_EQ(send_time(sim.log(), "urgent", "Pong"), 3'000u);
  EXPECT_EQ(send_time(sim.log(), "mid", "MidDone"), 12'000u);
}

TEST(RtosScheduling, NestedPreemption) {
  RtosSystem sys(profile::tags::SchedulingPreemptive, 0);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 500'000});
  sim.inject(1'000, "pjob", *sys.job);                             // prio 1
  sim.inject(2'000, "pmid", *sys.model.find_signal("MidPing"));    // prio 3
  sim.inject(3'000, "pping", *sys.ping);                           // prio 5
  sim.run();

  // high finishes first (3'000..4'000), then mid resumes (preempted at
  // 3'000 with 9'000 left -> done at 13'000), then the worker (preempted at
  // 2'000 with 99'000 left -> done at 112'000).
  EXPECT_EQ(send_time(sim.log(), "urgent", "Pong"), 4'000u);
  EXPECT_EQ(send_time(sim.log(), "mid", "MidDone"), 13'000u);
  EXPECT_EQ(send_time(sim.log(), "worker", "Done"), 112'000u);
  EXPECT_EQ(sim.pe_stats().at("cpu").preemptions, 2u);
}

TEST(RtosScheduling, PreemptionPreservesDeterminism) {
  RtosSystem a(profile::tags::SchedulingPreemptive, 25);
  RtosSystem b(profile::tags::SchedulingPreemptive, 25);
  mapping::SystemView va(a.model), vb(b.model);
  Simulation sa(va, {.horizon = 400'000});
  Simulation sb(vb, {.horizon = 400'000});
  for (Simulation* s : {&sa, &sb}) {
    RtosSystem& sys = s == &sa ? a : b;
    s->inject_periodic(500, 30'000, 10, "pjob", *sys.job);
    s->inject_periodic(700, 7'000, 40, "pping", *sys.ping);
    s->run();
  }
  EXPECT_EQ(sa.log().to_text(), sb.log().to_text());
}

TEST(RtosScheduling, PreemptionKeepsTotalComputeCycles) {
  // Preemption reorders execution but never loses work: the same workload
  // yields the same per-process cycle totals under both policies.
  auto total_cycles = [](const std::string& policy) {
    RtosSystem sys(policy, 10);
    mapping::SystemView view(sys.model);
    Simulation sim(view, {.horizon = 2'000'000});
    sim.inject_periodic(500, 110'000, 10, "pjob", *sys.job);
    sim.inject_periodic(700, 9'000, 50, "pping", *sys.ping);
    sim.run();
    long cycles = 0;
    for (const auto& r : sim.log().records()) {
      if (r.kind == LogRecord::Kind::Run) cycles += r.cycles;
    }
    return cycles;
  };
  EXPECT_EQ(total_cycles(profile::tags::SchedulingCooperative),
            total_cycles(profile::tags::SchedulingPreemptive));
}

TEST(RtosScheduling, ReadyQueuePicksHighestPriorityFirst) {
  // Cooperative PE: mid occupies the CPU 500..10'500 while a job (priority
  // 1) and a ping (priority 5) queue up. At 10'500 the scheduler must pick
  // the higher-priority urgent process even though the job arrived first.
  RtosSystem sys(profile::tags::SchedulingCooperative, 0);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 500'000});
  sim.inject(500, "pmid", *sys.model.find_signal("MidPing"));
  sim.inject(1'000, "pjob", *sys.job);
  sim.inject(2'000, "pping", *sys.ping);
  sim.run();
  // urgent runs 10'500..11'500; worker afterwards until 111'500.
  EXPECT_EQ(send_time(sim.log(), "urgent", "Pong"), 11'500u);
  EXPECT_EQ(send_time(sim.log(), "worker", "Done"), 111'500u);
}

TEST(RtosScheduling, EqualPriorityIsFifo) {
  // Two pings queued while mid runs: they are served in arrival order.
  RtosSystem sys(profile::tags::SchedulingCooperative, 0);
  mapping::SystemView view(sys.model);
  Simulation sim(view, {.horizon = 500'000});
  sim.inject(1'000, "pping", *sys.ping);
  sim.inject(1'100, "pping", *sys.ping);
  sim.run();
  std::vector<sim::Time> pongs;
  for (const auto& r : sim.log().records()) {
    if (r.kind == LogRecord::Kind::Send && r.process == "urgent" &&
        r.signal == "Pong") {
      pongs.push_back(r.time);
    }
  }
  ASSERT_EQ(pongs.size(), 2u);
  EXPECT_EQ(pongs[0], 2'000u);
  EXPECT_EQ(pongs[1], 3'000u);
}
