// tut — the command-line profiling tool.
//
// The paper's custom tool (Figure 1: "UML Profiling tool") works on the XML
// presentation of the model and the simulation log-file. This binary exposes
// the same operations:
//
//   tut info      <model.xml>                 model summary
//   tut validate  <model.xml> [--json]        design-rule check (exit 1 on errors)
//   tut lint      <model.xml> [--faults plan.xml] [--json] [--baseline file]
//                 [--write-baseline file] [--Werror] [--rules id|glob,...]
//                 [--absint|--no-absint]
//                                             whole-design static analysis:
//                                             core rules + EFSM bytecode
//                                             (incl. the value-range abstract
//                                             interpretation pass), signal-
//                                             flow and mapping families
//                                             (tut lint --rules lists them).
//                                             --rules VALUE keeps only the
//                                             named rules; globs like efsm.*
//                                             expand against the catalog and
//                                             unknown ids are a hard error.
//                                             Stale baseline entries warn as
//                                             analysis.baseline.stale
//   tut diagram   <model.xml> <figure>        fig3..fig8 as text/DOT on stdout
//   tut codegen   <model.xml> <outdir> [--host]  generate the C implementation
//   tut efsm      dump <model.xml> [--machine NAME]
//                                             disassemble the compiled EFSM
//                                             bytecode of every process
//                                             behaviour (or just NAME) and
//                                             print the per-state value
//                                             ranges the abstract
//                                             interpreter derives
//   tut profile   <model.xml> <sim.log>       Table-4 report + latencies
//   tut simulate  tutmac <outdir> [ms] [--faults plan.xml] [--seed N]
//                 [--batch N] [--threads K] [--backend interpreter|native]
//                 [--profile CLASS|profile.xml]
//                                             build+simulate the case study,
//                                             writing model.xml and sim.log;
//                                             with a fault plan the profiling
//                                             report gains the reliability
//                                             section. --batch N compiles the
//                                             model once and runs N scenarios
//                                             (fault seeds seed..seed+N-1)
//                                             over K worker threads, printing
//                                             a per-scenario table
//   tut campaign  tutmac <campaign.xml> [--threads K] [--shard k/n]
//                 [--checkpoint file] [--resume] [--samples file]
//                 [--backend interpreter|native]
//                 [--profile CLASS|profile.xml]
//                                             scenario-sweep campaign over the
//                                             case study: compiles one image
//                                             per swept mapping, runs the
//                                             sweep with streaming
//                                             aggregation (digests + P2
//                                             percentile sketches), prints
//                                             the campaign summary. --shard
//                                             k/n runs the k-th of n
//                                             contiguous index ranges;
//                                             --checkpoint/--resume survive
//                                             kills; --samples writes the
//                                             part file `campaign merge`
//                                             consumes
//   tut campaign  tutmac <campaign.xml> --dry-run
//                                             preflight: scenario count, axes,
//                                             fingerprint and part-file size —
//                                             nothing is built or run
//   tut campaign  merge <part>...             merge shard part files into the
//                                             single-process aggregate
//   tut serve     [--port N] [--profile CLASS|profile.xml] [--threads K]
//                                             persistent simulation daemon with
//                                             a content-hash compiled-model
//                                             cache; prints "tut-serve: ready
//                                             port=N" once accepting
//   tut client    --port N <simulate tutmac|lint|campaign tutmac|stats|evict|
//                 shutdown> ...               thin client: same flags as the
//                                             single-shot commands, but the
//                                             daemon reuses cached images, so
//                                             warm requests skip the whole
//                                             parse/lower/compile pipeline
//   tut roundtrip <model.xml>                 canonicalized XML on stdout
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/analyzer.hpp"
#include "appmodel/appmodel.hpp"
#include "codegen/codegen.hpp"
#include "codegen/native.hpp"
#include "diagram/diagram.hpp"
#include "efsm/program.hpp"
#include "profile/tut_profile.hpp"
#include "profiler/profiler.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/batch.hpp"
#include "sim/campaign.hpp"
#include "sim/resource.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"
#include "uml/validation.hpp"

using namespace tut;

namespace {

int usage() {
  std::cerr <<
      "usage: tut <command> ...\n"
      "  info      <model.xml>\n"
      "  validate  <model.xml> [--json]\n"
      "  lint      <model.xml> [--faults plan.xml] [--json] [--baseline file]"
      " [--write-baseline file] [--Werror] [--rules id|glob,...]"
      " [--absint|--no-absint]\n"
      "  lint      --rules\n"
      "  diagram   <model.xml> <fig3|fig4|fig5|fig6|fig7|fig8>\n"
      "  codegen   <model.xml> <outdir> [--host]\n"
      "  efsm      dump <model.xml> [--machine NAME]\n"
      "  profile   <model.xml> <sim.log>\n"
      "  simulate  tutmac <outdir> [horizon_ms] [--faults plan.xml] [--seed N]"
      " [--batch N] [--threads K] [--backend interpreter|native]"
      " [--profile CLASS|profile.xml]\n"
      "  campaign  tutmac <campaign.xml> [--threads K] [--shard k/n]"
      " [--checkpoint file] [--resume] [--samples file]"
      " [--backend interpreter|native] [--profile CLASS|profile.xml]\n"
      "            (profile classes: unbounded, constrained, balanced,"
      " server)\n"
      "  campaign  tutmac <campaign.xml> --dry-run\n"
      "  campaign  merge <part>...\n"
      "  serve     [--port N] [--profile CLASS|profile.xml] [--threads K]\n"
      "  client    --port N simulate tutmac <outdir> [horizon_ms]"
      " [--faults plan.xml] [--seed N] [--backend interpreter|native]\n"
      "  client    --port N lint <model.xml> [--json] [--Werror]\n"
      "  client    --port N campaign tutmac <campaign.xml> [--threads K]"
      " [--backend interpreter|native]\n"
      "  client    --port N stats | evict [key-hex] | shutdown\n"
      "  roundtrip <model.xml>\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::unique_ptr<uml::Model> load_model(const std::string& path) {
  return uml::from_xml_string(read_file(path));
}

/// Resolves --profile: a named class (unbounded/constrained/balanced/server)
/// or a path to a <tut:profile> XML file.
sim::ResourceProfile resolve_profile(const std::string& spec) {
  if (spec.empty()) return sim::ResourceProfile::unbounded();
  if (std::filesystem::exists(spec)) {
    return sim::ResourceProfile::from_xml_text(read_file(spec));
  }
  return sim::ResourceProfile::by_name(spec);
}

/// Resolves --backend for one compiled image. "native" emits + compiles (or
/// reuses the cached .so); when that fails — typically no C++ compiler on
/// the host — the tagged diagnostic goes to stderr and the caller falls
/// back to the interpreter (null return). Simulation results are
/// byte-identical either way; only throughput differs.
std::shared_ptr<const sim::BackendImage> make_backend(
    const std::string& backend,
    const std::shared_ptr<const sim::CompiledModel>& model) {
  if (backend.empty() || backend == "interpreter") return nullptr;
  if (backend != "native") {
    throw std::invalid_argument("unknown --backend '" + backend +
                                "' (interpreter, native)");
  }
  try {
    return codegen::NativeImage::build(model);
  } catch (const std::exception& e) {
    std::cerr << "tut: " << e.what()
              << "\ntut: falling back to the interpreter backend\n";
    return nullptr;
  }
}

int cmd_efsm_dump(const std::string& path, const std::string& machine_name) {
  const auto model = load_model(path);
  appmodel::ApplicationView view(*model);
  // Processes share behaviour classes; dump each state machine once, in
  // first-process order (the same order CompiledModel lowers them).
  std::vector<const uml::StateMachine*> machines;
  bool matched = false;
  for (const uml::Property* proc : view.processes()) {
    const uml::Class* comp = proc->part_type();
    const uml::StateMachine* sm =
        comp != nullptr ? comp->behavior() : nullptr;
    if (sm == nullptr) continue;
    if (!machine_name.empty() && sm->name() != machine_name) continue;
    matched = true;
    if (std::find(machines.begin(), machines.end(), sm) == machines.end()) {
      machines.push_back(sm);
    }
  }
  if (!machine_name.empty() && !matched) {
    std::cerr << "no process behaviour named '" << machine_name << "'\n";
    return 1;
  }
  if (machines.empty()) {
    std::cerr << "model has no executable process behaviours\n";
    return 1;
  }
  bool first = true;
  for (const uml::StateMachine* sm : machines) {
    if (!first) std::cout << '\n';
    first = false;
    const efsm::CompiledMachine cm(*sm);
    std::cout << efsm::disassemble(cm);
    const analysis::absint::MachineSummary summary =
        analysis::absint::analyze(cm);
    if (summary.analyzed) {
      std::cout << '\n' << analysis::absint::invariants_text(cm, summary);
    }
  }
  return 0;
}

int cmd_info(const std::string& path) {
  const auto model = load_model(path);
  mapping::SystemView view(*model);
  std::cout << "model    : " << model->name() << " (" << model->size()
            << " elements)\n";
  const uml::Class* app = view.app().application();
  std::cout << "app      : " << (app != nullptr ? app->name() : "<none>")
            << '\n';
  std::cout << "processes: " << view.app().processes().size() << " (";
  bool first = true;
  for (const uml::Property* p : view.app().processes()) {
    std::cout << (first ? "" : ", ") << p->name();
    first = false;
  }
  std::cout << ")\n";
  std::cout << "groups   : " << view.app().groups().size() << '\n';
  std::cout << "platform : " << view.plat().instances().size()
            << " component instances, " << view.plat().segments().size()
            << " segments\n";
  for (const uml::Property* g : view.app().groups()) {
    const uml::Property* pe = view.instance_for_group(*g);
    std::cout << "  " << g->name() << " -> "
              << (pe != nullptr ? pe->name() : "<unmapped>") << '\n';
  }
  return 0;
}

int cmd_validate(const std::string& path, bool json) {
  const auto model = load_model(path);
  const auto result = profile::make_validator().run(*model);
  if (json) {
    // Shares the lint renderer: same shape, core rules only, no offsets.
    analysis::Report report;
    report.merge(result);
    report.sort();
    std::cout << report.to_json() << '\n';
  } else {
    std::cout << result.to_string();
    std::cout << result.error_count() << " errors, " << result.warning_count()
              << " warnings\n";
  }
  return result.ok() ? 0 : 1;
}

int cmd_lint_rules() {
  for (const analysis::RuleInfo& rule : analysis::rule_catalog()) {
    std::cout << rule.id << " (" << uml::to_string(rule.severity) << "): "
              << rule.summary << '\n';
  }
  return 0;
}

/// Shell-style glob over a rule id: '*' matches any run, '?' one character.
bool glob_match(std::string_view pat, std::string_view s) {
  std::size_t p = 0, i = 0, star = std::string_view::npos, mark = 0;
  while (i < s.size()) {
    if (p < pat.size() && (pat[p] == s[i] || pat[p] == '?')) {
      ++p, ++i;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      mark = i;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      i = ++mark;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

/// Parses a --rules value (comma-separated ids or globs) into a keep
/// predicate. Every token must name or match at least one known rule —
/// analysis catalog or core profile rule — otherwise the filter would
/// silently drop everything.
std::function<bool(const std::string&)> make_rule_filter(
    const std::string& spec) {
  std::vector<std::string> known;
  for (const analysis::RuleInfo& rule : analysis::rule_catalog()) {
    known.emplace_back(rule.id);
  }
  const uml::Validator validator = profile::make_validator();
  for (const uml::Rule& rule : validator.rules()) {
    known.push_back(rule.id);
  }
  std::vector<std::string> patterns;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    const bool is_glob = tok.find_first_of("*?") != std::string::npos;
    const bool hits = std::any_of(
        known.begin(), known.end(), [&tok, is_glob](const std::string& id) {
          return is_glob ? glob_match(tok, id) : id == tok;
        });
    if (!hits) {
      throw std::invalid_argument(
          "[lint.rules.unknown] " +
          std::string(is_glob ? "pattern '" : "unknown rule id '") + tok +
          (is_glob ? "' matches no known rule" : "'") +
          " (tut lint --rules lists the catalog)");
    }
    patterns.push_back(tok);
  }
  if (patterns.empty()) {
    throw std::invalid_argument(
        "[lint.rules.unknown] --rules needs at least one rule id or glob");
  }
  return [patterns](const std::string& rule) {
    for (const std::string& pat : patterns) {
      if (pat.find_first_of("*?") != std::string::npos
              ? glob_match(pat, rule)
              : pat == rule) {
        return true;
      }
    }
    return false;
  };
}

int cmd_lint(const std::string& path, const std::string& faults_path,
             bool json, bool werror, const std::string& baseline_path,
             const std::string& write_baseline_path,
             const std::string& rules_spec, bool absint) {
  // Validate --rules up front so a typo fails before any analysis runs.
  std::function<bool(const std::string&)> keep;
  if (!rules_spec.empty()) keep = make_rule_filter(rules_spec);

  const std::string xml = read_file(path);
  const auto model = uml::from_xml_string(xml);

  analysis::Options options;
  options.xml_text = xml;
  options.absint = absint;
  sim::FaultPlan plan;
  if (!faults_path.empty()) {
    plan = sim::FaultPlan::from_xml_text(read_file(faults_path));
    options.faults = &plan;
  }

  analysis::Report report = analysis::analyze(*model, options);
  analysis::Baseline baseline;
  if (!baseline_path.empty()) {
    baseline = analysis::Baseline::parse(read_file(baseline_path));
    report.apply_baseline(baseline);
  }
  if (!write_baseline_path.empty()) {
    // Written from the current findings, so stale entries drop out here.
    std::ofstream out(write_baseline_path);
    out << analysis::Baseline::from_diagnostics(report.diagnostics());
    std::cerr << "wrote baseline to " << write_baseline_path << '\n';
  }
  if (!baseline_path.empty()) {
    // After --write-baseline: stale warnings must never serialize into a
    // fresh baseline, only flag rot in the checked-in one.
    for (const auto& [rule, element] :
         baseline.stale_against(report.diagnostics())) {
      report.add(uml::Severity::Warning, "analysis.baseline.stale", element,
                 "baseline entry '" + rule +
                     "' matches no current finding; remove it or refresh "
                     "with --write-baseline");
    }
    report.sort();
  }
  if (keep) report.filter_rules(keep);
  std::cout << (json ? report.to_json() + "\n" : report.to_text());
  return report.ok(werror) ? 0 : 1;
}

int cmd_diagram(const std::string& path, const std::string& figure) {
  const auto model = load_model(path);
  if (figure == "fig3") {
    std::cout << diagram::profile_hierarchy_text(profile::find(*model));
    return 0;
  }
  if (figure == "fig4") {
    std::cout << diagram::class_diagram_dot(*model);
    return 0;
  }
  if (figure == "fig5") {
    appmodel::ApplicationView view(*model);
    if (view.application() == nullptr) {
      std::cerr << "no <<Application>> class in the model\n";
      return 1;
    }
    std::cout << diagram::composite_structure_dot(*view.application());
    return 0;
  }
  if (figure == "fig6") {
    std::cout << diagram::grouping_dot(*model);
    return 0;
  }
  if (figure == "fig7") {
    std::cout << diagram::platform_dot(*model);
    return 0;
  }
  if (figure == "fig8") {
    std::cout << diagram::mapping_dot(*model);
    return 0;
  }
  std::cerr << "unknown figure '" << figure << "'\n";
  return 2;
}

int cmd_codegen(const std::string& path, const std::string& outdir,
                bool host) {
  const auto model = load_model(path);
  codegen::Options opt;
  opt.host_runtime = host;
  const auto bundle = codegen::generate(*model, opt);
  bundle.write_to(outdir);
  std::cout << "wrote " << bundle.files.size() << " files ("
            << bundle.total_lines() << " lines) to " << outdir << '\n';
  if (host) {
    std::cout << "build: gcc -std=c99 -I" << outdir << " " << outdir
              << "/*.c -o app\n";
  }
  return 0;
}

int cmd_profile(const std::string& model_path, const std::string& log_path) {
  // Stage 1: model parsing; stage 3: combine and analyze.
  const auto info = profiler::ProcessGroupInfo::from_xml(read_file(model_path));
  const auto log = sim::SimulationLog::parse(read_file(log_path));
  const auto report = profiler::analyze(info, log);
  std::cout << report.to_text() << '\n';
  const auto latencies = profiler::latency_report(log);
  if (!latencies.empty()) {
    std::cout << "End-to-end signal latencies (ticks)\n"
              << profiler::latency_to_text(latencies);
  }
  return 0;
}

int cmd_simulate_tutmac(const std::string& outdir, long horizon_ms,
                        const std::string& faults_path, long seed,
                        std::size_t batch, std::size_t threads,
                        const std::string& backend,
                        const std::string& profile_spec) {
  const sim::ResourceProfile profile = resolve_profile(profile_spec);
  if (!profile_spec.empty()) {
    std::cout << "profile: " << profile.to_text() << '\n';
  }
  tutmac::Options opt;
  opt.horizon = static_cast<sim::Time>(horizon_ms) * 1'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);

  sim::Config config;
  config.horizon = opt.horizon;
  config.envelope = profile;
  if (!faults_path.empty()) {
    config.faults = sim::FaultPlan::from_xml_text(read_file(faults_path));
  }
  if (seed >= 0) config.faults.seed = static_cast<std::uint64_t>(seed);

  std::string log_text;
  std::uint64_t events = 0;
  if (batch <= 1) {
    std::unique_ptr<sim::Simulation> simulation;
    std::shared_ptr<const sim::BackendImage> image;
    if (backend == "native") {
      image = make_backend(backend, sim::CompiledModel::build(view));
    }
    if (image) {
      char line[64];
      std::snprintf(line, sizeof line, "backend: native (image %016llx)\n",
                    static_cast<unsigned long long>(image->content_hash()));
      std::cout << line;
      simulation = std::make_unique<sim::Simulation>(image, config);
    } else {
      simulation = std::make_unique<sim::Simulation>(view, config);
    }
    sys.inject_workload(*simulation);
    simulation->run();
    log_text = simulation->log().to_text();
    events = simulation->events_dispatched();
  } else {
    // Batch mode: lower the model once, fan the scenarios out. Scenario i
    // perturbs only the fault seed, so without a fault plan all rows hash
    // identically (itself a useful determinism check).
    const auto compiled = sim::CompiledModel::build(view);
    const std::shared_ptr<const sim::BackendImage> image =
        make_backend(backend, compiled);
    std::vector<sim::BatchScenario> scenarios;
    for (std::size_t i = 0; i < batch; ++i) {
      sim::BatchScenario s;
      s.name = "seed-" + std::to_string(config.faults.seed + i);
      s.config = config;
      s.config.faults.seed = config.faults.seed + i;
      s.setup = [&sys](sim::Simulation& sim) { sys.inject_workload(sim); };
      scenarios.push_back(std::move(s));
    }
    // Logs are hashed and released inside the runner (memory stays
    // O(threads) however large N is); the sim.log written below comes from
    // the determinism rerun of scenario 0.
    sim::BatchOptions options;
    options.threads = threads;
    options.profile = profile;
    const sim::BatchRunner runner = image ? sim::BatchRunner(image, options)
                                          : sim::BatchRunner(compiled, options);
    const auto results = runner.run(scenarios);

    std::cout << "batch of " << batch << " scenarios over "
              << runner.threads() << " thread(s)\n";
    // Provenance row: which executor produced these hashes (BatchResult
    // carries it per scenario; one image ⇒ one line).
    if (!results.empty()) {
      std::cout << "backend: " << results[0].backend;
      if (results[0].image_hash != 0) {
        char hex[32];
        std::snprintf(hex, sizeof hex, " (image %016llx)",
                      static_cast<unsigned long long>(results[0].image_hash));
        std::cout << hex;
      }
      std::cout << '\n';
    }
    std::cout << "scenario        events    records   end(ms)   log-hash\n";
    for (const sim::BatchResult& r : results) {
      if (!r.error.empty()) {
        std::cout << r.name << "  ERROR: " << r.error << '\n';
        continue;
      }
      char line[128];
      std::snprintf(line, sizeof line, "%-14s %9llu  %9zu  %8.1f   %016llx\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events), r.records,
                    static_cast<double>(r.end_time) / 1e6,
                    static_cast<unsigned long long>(r.log_hash));
      std::cout << line;
    }
    if (results[0].error.empty()) {
      events = results[0].events;
      // Determinism check: a fresh single interpreter run of scenario 0
      // must hash to the batch's row 0 (and donates the log file we write
      // out). Under --backend=native row 0 came from the generated image,
      // so this doubles as an interpreter-vs-native byte-identity check.
      sim::Simulation check(compiled, scenarios[0].config);
      sys.inject_workload(check);
      check.run();
      log_text = check.log().to_text();
      const auto check_hash = sim::BatchRunner::hash_text(log_text);
      std::cout << "determinism check: "
                << (check_hash == results[0].log_hash ? "ok" : "MISMATCH")
                << '\n';
      if (check_hash != results[0].log_hash) return 1;
    }
  }

  std::filesystem::create_directories(outdir);
  {
    std::ofstream out(outdir + "/model.xml");
    out << uml::to_xml_string(*sys.model);
  }
  {
    std::ofstream out(outdir + "/sim.log");
    out << log_text;
  }
  std::cout << "simulated " << horizon_ms << " ms (" << events << " events)\n"
            << "wrote " << outdir << "/model.xml and " << outdir
            << "/sim.log\n";
  if (!faults_path.empty()) {
    // Degraded-mode runs print the profiling report directly: its
    // reliability section is the point of the exercise.
    const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
    const auto log = sim::SimulationLog::parse(log_text);
    std::cout << '\n' << profiler::analyze(info, log).to_text();
  }
  return 0;
}

/// Resolves a campaign mapping-axis name to the tutmac design alternative.
tutmac::MappingChoice tutmac_mapping_choice(const std::string& name) {
  if (name == "paper") return tutmac::MappingChoice::Paper;
  if (name == "loadBalanced") return tutmac::MappingChoice::LoadBalanced;
  if (name == "singlePe") return tutmac::MappingChoice::SinglePe;
  throw std::invalid_argument(
      "campaign: [campaign.ref.unknown] unknown tutmac mapping '" + name +
      "' (paper, loadBalanced, singlePe)");
}

int print_campaign_result(const sim::CampaignResult& result) {
  std::cout << result.aggregate.to_text();
  if (!result.completed) {
    std::cout << "partial:   stopped at scenario " << result.next << " of ["
              << result.first << ", " << result.end << ") — resume with "
              "--resume\n";
    return 1;
  }
  return 0;
}

int cmd_campaign_tutmac(const std::string& campaign_path,
                        sim::CampaignOptions options,
                        const std::string& backend,
                        const std::string& profile_spec) {
  options.profile = resolve_profile(profile_spec);
  if (!profile_spec.empty()) {
    std::cout << "profile: " << options.profile.to_text() << '\n';
  }
  const std::filesystem::path base =
      std::filesystem::path(campaign_path).parent_path();
  // Fault-plan files referenced by the campaign resolve relative to the
  // campaign file, like XML includes everywhere else. The profile's arena
  // ceiling governs the campaign-spec parse itself.
  const auto spec = sim::CampaignSpec::from_xml_text(
      read_file(campaign_path),
      [&base](const std::string& file) {
        const std::filesystem::path p(file);
        return read_file(p.is_absolute() ? file : (base / p).string());
      },
      static_cast<std::size_t>(options.profile.arena_bytes));

  // One built system + compiled image per swept mapping (entry 0 is the
  // paper mapping when the sweep names none). The systems stay alive for
  // their signal handles, which the setup callback injects through.
  std::vector<std::string> mapping_names = spec.mapping_names;
  if (mapping_names.empty()) mapping_names.push_back("paper");
  std::vector<tutmac::System> systems;
  std::vector<std::shared_ptr<const sim::CompiledModel>> images;
  for (const std::string& name : mapping_names) {
    tutmac::Options opt;
    opt.mapping = tutmac_mapping_choice(name);
    systems.push_back(tutmac::build(opt));
    mapping::SystemView view(*systems.back().model);
    images.push_back(sim::CompiledModel::build(view));
  }

  // --backend=native wraps every compiled image in a generated NativeImage.
  // All images fall back together: a half-native campaign would make the
  // provenance column ambiguous.
  std::vector<std::shared_ptr<const sim::BackendImage>> backends;
  if (backend == "native") {
    backends.reserve(images.size());
    for (const auto& image : images) {
      const auto native = make_backend(backend, image);
      if (!native) {
        backends.clear();
        break;
      }
      backends.push_back(native);
    }
  } else if (!backend.empty() && backend != "interpreter") {
    throw std::invalid_argument("unknown --backend '" + backend +
                                "' (interpreter, native)");
  }
  std::cout << "backend: " << (backends.empty() ? "interpreter" : "native");
  for (std::size_t i = 0; i < backends.size(); ++i) {
    char hex[48];
    std::snprintf(hex, sizeof hex, " %s=%016llx", mapping_names[i].c_str(),
                  static_cast<unsigned long long>(
                      backends[i]->content_hash()));
    std::cout << hex;
  }
  std::cout << '\n';

  const auto setup =
      [&systems](sim::Simulation& simulation, const sim::Scenario& sc) {
        const tutmac::System& sys = systems[sc.image];
        tutmac::Options o = sys.options;
        o.horizon = simulation.config().horizon;
        o.slot_period = static_cast<sim::Time>(
            sc.param("slotPeriod", static_cast<long>(o.slot_period)));
        o.rx_period = static_cast<sim::Time>(
            sc.param("rxPeriod", static_cast<long>(o.rx_period)));
        o.msdu_period = static_cast<sim::Time>(
            sc.param("msduPeriod", static_cast<long>(o.msdu_period)));
        sys.inject_workload(simulation, o);
      };
  const sim::CampaignRunner runner =
      backends.empty() ? sim::CampaignRunner(std::move(images), setup)
                       : sim::CampaignRunner(std::move(backends), setup);

  const sim::CampaignResult result = runner.run(spec, options);
  for (const std::string& note : result.notes) {
    std::cout << "note: " << note << '\n';
  }
  const std::uint64_t ran = result.next - result.first;
  std::cout << "campaign '" << spec.name << "': scenarios [" << result.first
            << ", " << result.end << ") of " << spec.total();
  if (options.shard.count > 1) {
    std::cout << "  (shard " << options.shard.index << "/"
              << options.shard.count << ")";
  }
  std::cout << "\n";
  if (result.wall_seconds > 0) {
    char rate[64];
    std::snprintf(rate, sizeof rate, "%.0f runs/sec, %.2f s wall\n",
                  static_cast<double>(ran) / result.wall_seconds,
                  result.wall_seconds);
    std::cout << rate;
  }
  return print_campaign_result(result);
}

int cmd_campaign_merge(const std::vector<std::string>& parts) {
  const sim::CampaignResult result = sim::merge_campaign_parts(parts);
  std::cout << "merged " << parts.size() << " part file(s): scenarios [0, "
            << result.end << ")\n";
  return print_campaign_result(result);
}

/// `tut campaign tutmac <xml> --dry-run` — the preflight: parse + validate
/// the sweep and quote its cost (scenario count, axes, fingerprint, exact
/// part-file size) without building a system or running anything.
int cmd_campaign_dry_run(const std::string& campaign_path,
                         const std::string& profile_spec) {
  const sim::ResourceProfile profile = resolve_profile(profile_spec);
  const std::filesystem::path base =
      std::filesystem::path(campaign_path).parent_path();
  const auto spec = sim::CampaignSpec::from_xml_text(
      read_file(campaign_path),
      [&base](const std::string& file) {
        const std::filesystem::path p(file);
        return read_file(p.is_absolute() ? file : (base / p).string());
      },
      static_cast<std::size_t>(profile.arena_bytes));
  const std::vector<std::string> defects = spec.validate();
  for (const std::string& d : defects) std::cout << "error: " << d << '\n';
  if (!defects.empty()) return 1;

  const std::uint64_t total = spec.total();
  std::cout << "campaign '" << spec.name << "' (dry run)\n"
            << "mode:        "
            << (spec.mode == sim::CampaignSpec::Mode::Cartesian ? "cartesian"
                                                                : "zip")
            << ", seed " << spec.base_seed << ", horizon "
            << spec.base.horizon << " ticks\n"
            << "scenarios:   " << total << '\n';
  for (const sim::CampaignAxis& axis : spec.axes) {
    std::cout << "axis:        " << axis.name << " (" << axis.values.size()
              << " values)\n";
  }
  if (!spec.mapping_names.empty()) {
    std::cout << "mappings:    ";
    for (std::size_t i = 0; i < spec.mapping_names.size(); ++i) {
      std::cout << (i != 0 ? ", " : "") << spec.mapping_names[i];
    }
    std::cout << '\n';
  }
  if (spec.plans.size() > 1) {
    std::cout << "plans:       ";
    for (std::size_t i = 0; i < spec.plans.size(); ++i) {
      std::cout << (i != 0 ? ", " : "") << spec.plans[i].first;
    }
    std::cout << '\n';
  }
  char line[96];
  std::snprintf(line, sizeof line, "fingerprint: %016llx\n",
                static_cast<unsigned long long>(spec.fingerprint()));
  std::cout << line;
  std::cout << "part file:   " << sim::part_file_bytes(total)
            << " bytes with --samples (" << sim::part_file_bytes(1) -
            sim::part_file_bytes(0) << " per scenario)\n";
  return 0;
}

/// The three periodic environment streams of the TUTMAC case study as wire
/// workload entries. The server replays tutmac::System::inject_workload's
/// arithmetic from these, so served runs are byte-identical to local ones;
/// the param names let campaign axes override the periods per scenario.
std::vector<serve::WorkloadEntry> tutmac_workload(const tutmac::System& sys) {
  const tutmac::Options& o = sys.options;
  std::vector<serve::WorkloadEntry> w(3);
  w[0].port = "pphy";
  w[0].signal = sys.radio_slot->name();
  w[0].param = "slotPeriod";
  w[0].period = o.slot_period;
  w[1].port = "pphy";
  w[1].signal = sys.rx_frame->name();
  w[1].param = "rxPeriod";
  w[1].period = o.rx_period;
  w[1].first_offset = 7'777;
  w[1].args = {256};
  w[2].port = "puser";
  w[2].signal = sys.user_msdu->name();
  w[2].param = "msduPeriod";
  w[2].period = o.msdu_period;
  w[2].first_offset = 3'333;
  w[2].args = {512};
  return w;
}

int cmd_serve(std::uint16_t port, const std::string& profile_spec,
              std::size_t threads) {
  // A daemon defaults to the server envelope (1 GiB cache ceiling) rather
  // than unbounded: it is long-lived by design.
  const sim::ResourceProfile profile =
      resolve_profile(profile_spec.empty() ? "server" : profile_spec);
  serve::Engine engine(profile);
  serve::Server server(engine, port, threads);
  // The ready line is machine-parsed (CI, scripts): keep the shape stable
  // and flush before blocking in the accept loop.
  std::cout << "tut-serve: ready port=" << server.port() << " profile="
            << profile.name << " workers=" << server.threads() << std::endl;
  server.run();
  const serve::CacheStats stats = engine.cache().stats();
  std::cout << "tut-serve: stopped (" << stats.hits << " hits, "
            << stats.misses << " misses, " << stats.evictions
            << " evictions)\n";
  return 0;
}

int cmd_client_simulate_tutmac(std::uint16_t port, const std::string& outdir,
                               long horizon_ms, const std::string& faults_path,
                               long seed, const std::string& backend) {
  tutmac::Options opt;
  opt.horizon = static_cast<sim::Time>(horizon_ms) * 1'000'000;
  const tutmac::System sys = tutmac::build(opt);

  serve::SimulateRequest q;
  q.model_xml = uml::to_xml_string(*sys.model);
  q.backend = backend == "native" ? serve::BackendChoice::Native
                                  : serve::BackendChoice::Interpreter;
  q.horizon = opt.horizon;
  if (!faults_path.empty()) q.faults_xml = read_file(faults_path);
  if (seed >= 0) {
    q.has_seed = true;
    q.seed = static_cast<std::uint64_t>(seed);
  }
  q.want_log = true;
  q.workload = tutmac_workload(sys);

  serve::Client client("127.0.0.1", port);
  const std::string body = client.call(q.encode());
  serve::wire::Reader r(body);
  const serve::SimulateResponse p = serve::SimulateResponse::decode(r);

  std::cout << "cache: " << (p.warm ? "warm" : "cold") << '\n'
            << "backend: " << p.backend_name;
  if (p.image_hash != 0) {
    char hex[32];
    std::snprintf(hex, sizeof hex, " (image %016llx)",
                  static_cast<unsigned long long>(p.image_hash));
    std::cout << hex;
  }
  std::cout << '\n';

  std::filesystem::create_directories(outdir);
  {
    std::ofstream out(outdir + "/model.xml");
    out << q.model_xml;
  }
  {
    std::ofstream out(outdir + "/sim.log");
    out << p.log_text;
  }
  char digest[32];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(p.digest));
  std::cout << "simulated " << horizon_ms << " ms (" << p.events
            << " events, " << p.records << " records, digest " << digest
            << ")\nwrote " << outdir << "/model.xml and " << outdir
            << "/sim.log\n";
  return 0;
}

int cmd_client_lint(std::uint16_t port, const std::string& model_path,
                    bool json, bool werror) {
  serve::LintRequest q;
  q.model_xml = read_file(model_path);
  q.json = json;
  q.werror = werror;
  serve::Client client("127.0.0.1", port);
  const std::string body = client.call(q.encode());
  serve::wire::Reader r(body);
  const serve::LintResponse p = serve::LintResponse::decode(r);
  std::cerr << "cache: " << (p.warm ? "warm" : "cold") << '\n';
  std::cout << p.text;
  return p.ok ? 0 : 1;
}

int cmd_client_campaign_tutmac(std::uint16_t port,
                               const std::string& campaign_path,
                               std::uint32_t threads,
                               const std::string& backend) {
  serve::CampaignRequest q;
  q.campaign_xml = read_file(campaign_path);
  q.backend = backend == "native" ? serve::BackendChoice::Native
                                  : serve::BackendChoice::Interpreter;
  q.threads = threads;

  // Parse the sweep locally once: to learn which mapping images to ship and
  // to inline every referenced fault-plan file (the daemon never touches
  // client disks).
  const std::filesystem::path base =
      std::filesystem::path(campaign_path).parent_path();
  const auto spec = sim::CampaignSpec::from_xml_text(
      q.campaign_xml, [&base, &q](const std::string& file) {
        const std::filesystem::path p(file);
        std::string content =
            read_file(p.is_absolute() ? file : (base / p).string());
        q.files.emplace_back(file, content);
        return content;
      });

  std::vector<std::string> mapping_names = spec.mapping_names;
  if (mapping_names.empty()) mapping_names.push_back("paper");
  for (const std::string& name : mapping_names) {
    tutmac::Options opt;
    opt.mapping = tutmac_mapping_choice(name);
    const tutmac::System sys = tutmac::build(opt);
    q.images.emplace_back(name, uml::to_xml_string(*sys.model));
    if (q.workload.empty()) q.workload = tutmac_workload(sys);
  }

  serve::Client client("127.0.0.1", port);
  const std::string body = client.call(q.encode());
  serve::wire::Reader r(body);
  const serve::CampaignResponse p = serve::CampaignResponse::decode(r);
  std::cout << "cache: " << p.warm_images << "/" << q.images.size()
            << " images warm\nbackend: " << p.backend_name << '\n'
            << p.text;
  return p.completed ? 0 : 1;
}

int cmd_client_admin(std::uint16_t port, const std::string& what,
                     bool evict_all, std::uint64_t evict_key) {
  serve::Client client("127.0.0.1", port);
  if (what == "stats") {
    const std::string body = client.call(serve::encode_stats_request());
    serve::wire::Reader r(body);
    std::cout << serve::StatsResponse::decode(r).to_text();
    return 0;
  }
  if (what == "evict") {
    serve::EvictRequest q;
    q.all = evict_all;
    q.key = evict_key;
    const std::string body = client.call(q.encode());
    serve::wire::Reader r(body);
    std::cout << serve::EvictResponse::decode(r).to_text();
    return 0;
  }
  const std::string body = client.call(serve::encode_shutdown_request());
  serve::wire::Reader r(body);
  std::cout << serve::ShutdownResponse::decode(r).to_text();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "info" && args.size() == 2) return cmd_info(args[1]);
    if (cmd == "validate" && (args.size() == 2 || args.size() == 3)) {
      const bool json = args.size() == 3 && args[2] == "--json";
      if (args.size() == 3 && !json) return usage();
      return cmd_validate(args[1], json);
    }
    if (cmd == "lint" && args.size() >= 2) {
      if (args[1] == "--rules" && args.size() == 2) return cmd_lint_rules();
      std::string faults_path, baseline_path, write_baseline_path, rules_spec;
      bool json = false, werror = false, absint = true;
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--json") {
          json = true;
        } else if (args[i] == "--Werror") {
          werror = true;
        } else if (args[i] == "--absint") {
          absint = true;
        } else if (args[i] == "--no-absint") {
          absint = false;
        } else if (args[i] == "--faults" && i + 1 < args.size()) {
          faults_path = args[++i];
        } else if (args[i] == "--baseline" && i + 1 < args.size()) {
          baseline_path = args[++i];
        } else if (args[i] == "--write-baseline" && i + 1 < args.size()) {
          write_baseline_path = args[++i];
        } else if (args[i] == "--rules" && i + 1 < args.size()) {
          rules_spec = args[++i];
        } else {
          return usage();
        }
      }
      return cmd_lint(args[1], faults_path, json, werror, baseline_path,
                      write_baseline_path, rules_spec, absint);
    }
    if (cmd == "diagram" && args.size() == 3) {
      return cmd_diagram(args[1], args[2]);
    }
    if (cmd == "codegen" && (args.size() == 3 || args.size() == 4)) {
      const bool host = args.size() == 4 && args[3] == "--host";
      if (args.size() == 4 && !host) return usage();
      return cmd_codegen(args[1], args[2], host);
    }
    if (cmd == "profile" && args.size() == 3) {
      return cmd_profile(args[1], args[2]);
    }
    if (cmd == "efsm" && args.size() >= 3 && args[1] == "dump") {
      std::string machine;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--machine" && i + 1 < args.size()) {
          machine = args[++i];
        } else {
          return usage();
        }
      }
      return cmd_efsm_dump(args[2], machine);
    }
    if (cmd == "simulate" && args.size() >= 3 && args[1] == "tutmac") {
      long ms = 20;
      std::string faults_path;
      long seed = -1;  // negative: keep the plan's own seed
      std::size_t batch = 1;
      std::size_t threads = 0;
      std::string backend;
      std::string profile_spec;
      std::size_t i = 3;
      if (i < args.size() && args[i][0] != '-') ms = std::stol(args[i++]);
      while (i < args.size()) {
        if (args[i] == "--faults" && i + 1 < args.size()) {
          faults_path = args[++i];
        } else if (args[i] == "--seed" && i + 1 < args.size()) {
          seed = std::stol(args[++i]);
        } else if (args[i] == "--batch" && i + 1 < args.size()) {
          batch = static_cast<std::size_t>(std::stoul(args[++i]));
        } else if (args[i] == "--threads" && i + 1 < args.size()) {
          threads = static_cast<std::size_t>(std::stoul(args[++i]));
        } else if (args[i] == "--backend" && i + 1 < args.size()) {
          backend = args[++i];
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i].rfind("--backend=", 0) == 0) {
          backend = args[i].substr(10);
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i] == "--profile" && i + 1 < args.size()) {
          profile_spec = args[++i];
        } else if (args[i].rfind("--profile=", 0) == 0) {
          profile_spec = args[i].substr(10);
        } else {
          return usage();
        }
        ++i;
      }
      return cmd_simulate_tutmac(args[2], ms, faults_path, seed, batch,
                                 threads, backend, profile_spec);
    }
    if (cmd == "campaign" && args.size() >= 3 && args[1] == "merge") {
      return cmd_campaign_merge(
          std::vector<std::string>(args.begin() + 2, args.end()));
    }
    if (cmd == "campaign" && args.size() >= 3 && args[1] == "tutmac") {
      sim::CampaignOptions options;
      std::string backend;
      std::string profile_spec;
      bool dry_run = false;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--backend" && i + 1 < args.size()) {
          backend = args[++i];
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i].rfind("--backend=", 0) == 0) {
          backend = args[i].substr(10);
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i] == "--profile" && i + 1 < args.size()) {
          profile_spec = args[++i];
        } else if (args[i].rfind("--profile=", 0) == 0) {
          profile_spec = args[i].substr(10);
        } else if (args[i] == "--threads" && i + 1 < args.size()) {
          options.threads = static_cast<std::size_t>(std::stoul(args[++i]));
        } else if (args[i] == "--shard" && i + 1 < args.size()) {
          const std::string& kn = args[++i];
          const std::size_t slash = kn.find('/');
          if (slash == std::string::npos) return usage();
          options.shard.index =
              static_cast<std::uint32_t>(std::stoul(kn.substr(0, slash)));
          options.shard.count =
              static_cast<std::uint32_t>(std::stoul(kn.substr(slash + 1)));
        } else if (args[i] == "--checkpoint" && i + 1 < args.size()) {
          options.checkpoint_path = args[++i];
        } else if (args[i] == "--resume") {
          options.resume = true;
        } else if (args[i] == "--samples" && i + 1 < args.size()) {
          options.samples_path = args[++i];
        } else if (args[i] == "--dry-run") {
          dry_run = true;
        } else {
          return usage();
        }
      }
      if (dry_run) return cmd_campaign_dry_run(args[2], profile_spec);
      return cmd_campaign_tutmac(args[2], options, backend, profile_spec);
    }
    if (cmd == "serve") {
      std::uint16_t port = 0;
      std::string profile_spec;
      std::size_t threads = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--port" && i + 1 < args.size()) {
          port = static_cast<std::uint16_t>(std::stoul(args[++i]));
        } else if (args[i].rfind("--port=", 0) == 0) {
          port = static_cast<std::uint16_t>(std::stoul(args[i].substr(7)));
        } else if (args[i] == "--profile" && i + 1 < args.size()) {
          profile_spec = args[++i];
        } else if (args[i].rfind("--profile=", 0) == 0) {
          profile_spec = args[i].substr(10);
        } else if (args[i] == "--threads" && i + 1 < args.size()) {
          threads = static_cast<std::size_t>(std::stoul(args[++i]));
        } else {
          return usage();
        }
      }
      return cmd_serve(port, profile_spec, threads);
    }
    if (cmd == "client" && args.size() >= 2) {
      // --port is accepted anywhere in the argument list; everything else
      // keeps the single-shot commands' positional shape and flags.
      std::uint16_t port = 0;
      std::vector<std::string> rest;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--port" && i + 1 < args.size()) {
          port = static_cast<std::uint16_t>(std::stoul(args[++i]));
        } else if (args[i].rfind("--port=", 0) == 0) {
          port = static_cast<std::uint16_t>(std::stoul(args[i].substr(7)));
        } else {
          rest.push_back(args[i]);
        }
      }
      if (port == 0 || rest.empty()) return usage();
      const std::string& sub = rest[0];
      if (sub == "simulate" && rest.size() >= 3 && rest[1] == "tutmac") {
        long ms = 20;
        std::string faults_path, backend;
        long seed = -1;
        std::size_t i = 3;
        if (i < rest.size() && rest[i][0] != '-') ms = std::stol(rest[i++]);
        while (i < rest.size()) {
          if (rest[i] == "--faults" && i + 1 < rest.size()) {
            faults_path = rest[++i];
          } else if (rest[i] == "--seed" && i + 1 < rest.size()) {
            seed = std::stol(rest[++i]);
          } else if (rest[i] == "--backend" && i + 1 < rest.size()) {
            backend = rest[++i];
          } else if (rest[i].rfind("--backend=", 0) == 0) {
            backend = rest[i].substr(10);
          } else {
            return usage();
          }
          ++i;
        }
        return cmd_client_simulate_tutmac(port, rest[2], ms, faults_path,
                                          seed, backend);
      }
      if (sub == "lint" && rest.size() >= 2) {
        bool json = false, werror = false;
        for (std::size_t i = 2; i < rest.size(); ++i) {
          if (rest[i] == "--json") {
            json = true;
          } else if (rest[i] == "--Werror") {
            werror = true;
          } else {
            return usage();
          }
        }
        return cmd_client_lint(port, rest[1], json, werror);
      }
      if (sub == "campaign" && rest.size() >= 3 && rest[1] == "tutmac") {
        std::uint32_t threads = 0;
        std::string backend;
        for (std::size_t i = 3; i < rest.size(); ++i) {
          if (rest[i] == "--threads" && i + 1 < rest.size()) {
            threads = static_cast<std::uint32_t>(std::stoul(rest[++i]));
          } else if (rest[i] == "--backend" && i + 1 < rest.size()) {
            backend = rest[++i];
          } else if (rest[i].rfind("--backend=", 0) == 0) {
            backend = rest[i].substr(10);
          } else {
            return usage();
          }
        }
        return cmd_client_campaign_tutmac(port, rest[2], threads, backend);
      }
      if (sub == "stats" && rest.size() == 1) {
        return cmd_client_admin(port, "stats", false, 0);
      }
      if (sub == "evict" && rest.size() <= 2) {
        const bool all = rest.size() == 1;
        const std::uint64_t key =
            all ? 0 : std::stoull(rest[1], nullptr, 16);
        return cmd_client_admin(port, "evict", all, key);
      }
      if (sub == "shutdown" && rest.size() == 1) {
        return cmd_client_admin(port, "shutdown", false, 0);
      }
      return usage();
    }
    if (cmd == "roundtrip" && args.size() == 2) {
      std::cout << uml::to_xml_string(*load_model(args[1]));
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "tut: " << e.what() << '\n';
    return 1;
  }
}
