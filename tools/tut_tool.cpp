// tut — the command-line profiling tool.
//
// The paper's custom tool (Figure 1: "UML Profiling tool") works on the XML
// presentation of the model and the simulation log-file. This binary exposes
// the same operations:
//
//   tut info      <model.xml>                 model summary
//   tut validate  <model.xml> [--json]        design-rule check (exit 1 on errors)
//   tut lint      <model.xml> [--faults plan.xml] [--json] [--baseline file]
//                 [--write-baseline file] [--Werror]
//                                             whole-design static analysis:
//                                             core rules + EFSM bytecode,
//                                             signal-flow and mapping families
//                                             (tut lint --rules lists them)
//   tut diagram   <model.xml> <figure>        fig3..fig8 as text/DOT on stdout
//   tut codegen   <model.xml> <outdir> [--host]  generate the C implementation
//   tut efsm      dump <model.xml> [--machine NAME]
//                                             disassemble the compiled EFSM
//                                             bytecode of every process
//                                             behaviour (or just NAME)
//   tut profile   <model.xml> <sim.log>       Table-4 report + latencies
//   tut simulate  tutmac <outdir> [ms] [--faults plan.xml] [--seed N]
//                 [--batch N] [--threads K] [--backend interpreter|native]
//                 [--profile CLASS|profile.xml]
//                                             build+simulate the case study,
//                                             writing model.xml and sim.log;
//                                             with a fault plan the profiling
//                                             report gains the reliability
//                                             section. --batch N compiles the
//                                             model once and runs N scenarios
//                                             (fault seeds seed..seed+N-1)
//                                             over K worker threads, printing
//                                             a per-scenario table
//   tut campaign  tutmac <campaign.xml> [--threads K] [--shard k/n]
//                 [--checkpoint file] [--resume] [--samples file]
//                 [--backend interpreter|native]
//                 [--profile CLASS|profile.xml]
//                                             scenario-sweep campaign over the
//                                             case study: compiles one image
//                                             per swept mapping, runs the
//                                             sweep with streaming
//                                             aggregation (digests + P2
//                                             percentile sketches), prints
//                                             the campaign summary. --shard
//                                             k/n runs the k-th of n
//                                             contiguous index ranges;
//                                             --checkpoint/--resume survive
//                                             kills; --samples writes the
//                                             part file `campaign merge`
//                                             consumes
//   tut campaign  merge <part>...             merge shard part files into the
//                                             single-process aggregate
//   tut roundtrip <model.xml>                 canonicalized XML on stdout
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "appmodel/appmodel.hpp"
#include "codegen/codegen.hpp"
#include "codegen/native.hpp"
#include "diagram/diagram.hpp"
#include "efsm/program.hpp"
#include "profile/tut_profile.hpp"
#include "profiler/profiler.hpp"
#include "sim/batch.hpp"
#include "sim/campaign.hpp"
#include "sim/resource.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"
#include "uml/validation.hpp"

using namespace tut;

namespace {

int usage() {
  std::cerr <<
      "usage: tut <command> ...\n"
      "  info      <model.xml>\n"
      "  validate  <model.xml> [--json]\n"
      "  lint      <model.xml> [--faults plan.xml] [--json] [--baseline file]"
      " [--write-baseline file] [--Werror]\n"
      "  lint      --rules\n"
      "  diagram   <model.xml> <fig3|fig4|fig5|fig6|fig7|fig8>\n"
      "  codegen   <model.xml> <outdir> [--host]\n"
      "  efsm      dump <model.xml> [--machine NAME]\n"
      "  profile   <model.xml> <sim.log>\n"
      "  simulate  tutmac <outdir> [horizon_ms] [--faults plan.xml] [--seed N]"
      " [--batch N] [--threads K] [--backend interpreter|native]"
      " [--profile CLASS|profile.xml]\n"
      "  campaign  tutmac <campaign.xml> [--threads K] [--shard k/n]"
      " [--checkpoint file] [--resume] [--samples file]"
      " [--backend interpreter|native] [--profile CLASS|profile.xml]\n"
      "            (profile classes: unbounded, constrained, balanced,"
      " server)\n"
      "  campaign  merge <part>...\n"
      "  roundtrip <model.xml>\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::unique_ptr<uml::Model> load_model(const std::string& path) {
  return uml::from_xml_string(read_file(path));
}

/// Resolves --profile: a named class (unbounded/constrained/balanced/server)
/// or a path to a <tut:profile> XML file.
sim::ResourceProfile resolve_profile(const std::string& spec) {
  if (spec.empty()) return sim::ResourceProfile::unbounded();
  if (std::filesystem::exists(spec)) {
    return sim::ResourceProfile::from_xml_text(read_file(spec));
  }
  return sim::ResourceProfile::by_name(spec);
}

/// Resolves --backend for one compiled image. "native" emits + compiles (or
/// reuses the cached .so); when that fails — typically no C++ compiler on
/// the host — the tagged diagnostic goes to stderr and the caller falls
/// back to the interpreter (null return). Simulation results are
/// byte-identical either way; only throughput differs.
std::shared_ptr<const sim::BackendImage> make_backend(
    const std::string& backend,
    const std::shared_ptr<const sim::CompiledModel>& model) {
  if (backend.empty() || backend == "interpreter") return nullptr;
  if (backend != "native") {
    throw std::invalid_argument("unknown --backend '" + backend +
                                "' (interpreter, native)");
  }
  try {
    return codegen::NativeImage::build(model);
  } catch (const std::exception& e) {
    std::cerr << "tut: " << e.what()
              << "\ntut: falling back to the interpreter backend\n";
    return nullptr;
  }
}

int cmd_efsm_dump(const std::string& path, const std::string& machine_name) {
  const auto model = load_model(path);
  appmodel::ApplicationView view(*model);
  // Processes share behaviour classes; dump each state machine once, in
  // first-process order (the same order CompiledModel lowers them).
  std::vector<const uml::StateMachine*> machines;
  bool matched = false;
  for (const uml::Property* proc : view.processes()) {
    const uml::Class* comp = proc->part_type();
    const uml::StateMachine* sm =
        comp != nullptr ? comp->behavior() : nullptr;
    if (sm == nullptr) continue;
    if (!machine_name.empty() && sm->name() != machine_name) continue;
    matched = true;
    if (std::find(machines.begin(), machines.end(), sm) == machines.end()) {
      machines.push_back(sm);
    }
  }
  if (!machine_name.empty() && !matched) {
    std::cerr << "no process behaviour named '" << machine_name << "'\n";
    return 1;
  }
  if (machines.empty()) {
    std::cerr << "model has no executable process behaviours\n";
    return 1;
  }
  bool first = true;
  for (const uml::StateMachine* sm : machines) {
    if (!first) std::cout << '\n';
    first = false;
    std::cout << efsm::disassemble(efsm::CompiledMachine(*sm));
  }
  return 0;
}

int cmd_info(const std::string& path) {
  const auto model = load_model(path);
  mapping::SystemView view(*model);
  std::cout << "model    : " << model->name() << " (" << model->size()
            << " elements)\n";
  const uml::Class* app = view.app().application();
  std::cout << "app      : " << (app != nullptr ? app->name() : "<none>")
            << '\n';
  std::cout << "processes: " << view.app().processes().size() << " (";
  bool first = true;
  for (const uml::Property* p : view.app().processes()) {
    std::cout << (first ? "" : ", ") << p->name();
    first = false;
  }
  std::cout << ")\n";
  std::cout << "groups   : " << view.app().groups().size() << '\n';
  std::cout << "platform : " << view.plat().instances().size()
            << " component instances, " << view.plat().segments().size()
            << " segments\n";
  for (const uml::Property* g : view.app().groups()) {
    const uml::Property* pe = view.instance_for_group(*g);
    std::cout << "  " << g->name() << " -> "
              << (pe != nullptr ? pe->name() : "<unmapped>") << '\n';
  }
  return 0;
}

int cmd_validate(const std::string& path, bool json) {
  const auto model = load_model(path);
  const auto result = profile::make_validator().run(*model);
  if (json) {
    // Shares the lint renderer: same shape, core rules only, no offsets.
    analysis::Report report;
    report.merge(result);
    report.sort();
    std::cout << report.to_json() << '\n';
  } else {
    std::cout << result.to_string();
    std::cout << result.error_count() << " errors, " << result.warning_count()
              << " warnings\n";
  }
  return result.ok() ? 0 : 1;
}

int cmd_lint_rules() {
  for (const analysis::RuleInfo& rule : analysis::rule_catalog()) {
    std::cout << rule.id << " (" << uml::to_string(rule.severity) << "): "
              << rule.summary << '\n';
  }
  return 0;
}

int cmd_lint(const std::string& path, const std::string& faults_path,
             bool json, bool werror, const std::string& baseline_path,
             const std::string& write_baseline_path) {
  const std::string xml = read_file(path);
  const auto model = uml::from_xml_string(xml);

  analysis::Options options;
  options.xml_text = xml;
  sim::FaultPlan plan;
  if (!faults_path.empty()) {
    plan = sim::FaultPlan::from_xml_text(read_file(faults_path));
    options.faults = &plan;
  }

  analysis::Report report = analysis::analyze(*model, options);
  if (!baseline_path.empty()) {
    report.apply_baseline(analysis::Baseline::parse(read_file(baseline_path)));
  }
  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    out << analysis::Baseline::from_diagnostics(report.diagnostics());
    std::cerr << "wrote baseline to " << write_baseline_path << '\n';
  }
  std::cout << (json ? report.to_json() + "\n" : report.to_text());
  return report.ok(werror) ? 0 : 1;
}

int cmd_diagram(const std::string& path, const std::string& figure) {
  const auto model = load_model(path);
  if (figure == "fig3") {
    std::cout << diagram::profile_hierarchy_text(profile::find(*model));
    return 0;
  }
  if (figure == "fig4") {
    std::cout << diagram::class_diagram_dot(*model);
    return 0;
  }
  if (figure == "fig5") {
    appmodel::ApplicationView view(*model);
    if (view.application() == nullptr) {
      std::cerr << "no <<Application>> class in the model\n";
      return 1;
    }
    std::cout << diagram::composite_structure_dot(*view.application());
    return 0;
  }
  if (figure == "fig6") {
    std::cout << diagram::grouping_dot(*model);
    return 0;
  }
  if (figure == "fig7") {
    std::cout << diagram::platform_dot(*model);
    return 0;
  }
  if (figure == "fig8") {
    std::cout << diagram::mapping_dot(*model);
    return 0;
  }
  std::cerr << "unknown figure '" << figure << "'\n";
  return 2;
}

int cmd_codegen(const std::string& path, const std::string& outdir,
                bool host) {
  const auto model = load_model(path);
  codegen::Options opt;
  opt.host_runtime = host;
  const auto bundle = codegen::generate(*model, opt);
  bundle.write_to(outdir);
  std::cout << "wrote " << bundle.files.size() << " files ("
            << bundle.total_lines() << " lines) to " << outdir << '\n';
  if (host) {
    std::cout << "build: gcc -std=c99 -I" << outdir << " " << outdir
              << "/*.c -o app\n";
  }
  return 0;
}

int cmd_profile(const std::string& model_path, const std::string& log_path) {
  // Stage 1: model parsing; stage 3: combine and analyze.
  const auto info = profiler::ProcessGroupInfo::from_xml(read_file(model_path));
  const auto log = sim::SimulationLog::parse(read_file(log_path));
  const auto report = profiler::analyze(info, log);
  std::cout << report.to_text() << '\n';
  const auto latencies = profiler::latency_report(log);
  if (!latencies.empty()) {
    std::cout << "End-to-end signal latencies (ticks)\n"
              << profiler::latency_to_text(latencies);
  }
  return 0;
}

int cmd_simulate_tutmac(const std::string& outdir, long horizon_ms,
                        const std::string& faults_path, long seed,
                        std::size_t batch, std::size_t threads,
                        const std::string& backend,
                        const std::string& profile_spec) {
  const sim::ResourceProfile profile = resolve_profile(profile_spec);
  if (!profile_spec.empty()) {
    std::cout << "profile: " << profile.to_text() << '\n';
  }
  tutmac::Options opt;
  opt.horizon = static_cast<sim::Time>(horizon_ms) * 1'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);

  sim::Config config;
  config.horizon = opt.horizon;
  config.envelope = profile;
  if (!faults_path.empty()) {
    config.faults = sim::FaultPlan::from_xml_text(read_file(faults_path));
  }
  if (seed >= 0) config.faults.seed = static_cast<std::uint64_t>(seed);

  std::string log_text;
  std::uint64_t events = 0;
  if (batch <= 1) {
    std::unique_ptr<sim::Simulation> simulation;
    std::shared_ptr<const sim::BackendImage> image;
    if (backend == "native") {
      image = make_backend(backend, sim::CompiledModel::build(view));
    }
    if (image) {
      char line[64];
      std::snprintf(line, sizeof line, "backend: native (image %016llx)\n",
                    static_cast<unsigned long long>(image->content_hash()));
      std::cout << line;
      simulation = std::make_unique<sim::Simulation>(image, config);
    } else {
      simulation = std::make_unique<sim::Simulation>(view, config);
    }
    sys.inject_workload(*simulation);
    simulation->run();
    log_text = simulation->log().to_text();
    events = simulation->events_dispatched();
  } else {
    // Batch mode: lower the model once, fan the scenarios out. Scenario i
    // perturbs only the fault seed, so without a fault plan all rows hash
    // identically (itself a useful determinism check).
    const auto compiled = sim::CompiledModel::build(view);
    const std::shared_ptr<const sim::BackendImage> image =
        make_backend(backend, compiled);
    std::vector<sim::BatchScenario> scenarios;
    for (std::size_t i = 0; i < batch; ++i) {
      sim::BatchScenario s;
      s.name = "seed-" + std::to_string(config.faults.seed + i);
      s.config = config;
      s.config.faults.seed = config.faults.seed + i;
      s.setup = [&sys](sim::Simulation& sim) { sys.inject_workload(sim); };
      scenarios.push_back(std::move(s));
    }
    // Logs are hashed and released inside the runner (memory stays
    // O(threads) however large N is); the sim.log written below comes from
    // the determinism rerun of scenario 0.
    sim::BatchOptions options;
    options.threads = threads;
    options.profile = profile;
    const sim::BatchRunner runner = image ? sim::BatchRunner(image, options)
                                          : sim::BatchRunner(compiled, options);
    const auto results = runner.run(scenarios);

    std::cout << "batch of " << batch << " scenarios over "
              << runner.threads() << " thread(s)\n";
    // Provenance row: which executor produced these hashes (BatchResult
    // carries it per scenario; one image ⇒ one line).
    if (!results.empty()) {
      std::cout << "backend: " << results[0].backend;
      if (results[0].image_hash != 0) {
        char hex[32];
        std::snprintf(hex, sizeof hex, " (image %016llx)",
                      static_cast<unsigned long long>(results[0].image_hash));
        std::cout << hex;
      }
      std::cout << '\n';
    }
    std::cout << "scenario        events    records   end(ms)   log-hash\n";
    for (const sim::BatchResult& r : results) {
      if (!r.error.empty()) {
        std::cout << r.name << "  ERROR: " << r.error << '\n';
        continue;
      }
      char line[128];
      std::snprintf(line, sizeof line, "%-14s %9llu  %9zu  %8.1f   %016llx\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events), r.records,
                    static_cast<double>(r.end_time) / 1e6,
                    static_cast<unsigned long long>(r.log_hash));
      std::cout << line;
    }
    if (results[0].error.empty()) {
      events = results[0].events;
      // Determinism check: a fresh single interpreter run of scenario 0
      // must hash to the batch's row 0 (and donates the log file we write
      // out). Under --backend=native row 0 came from the generated image,
      // so this doubles as an interpreter-vs-native byte-identity check.
      sim::Simulation check(compiled, scenarios[0].config);
      sys.inject_workload(check);
      check.run();
      log_text = check.log().to_text();
      const auto check_hash = sim::BatchRunner::hash_text(log_text);
      std::cout << "determinism check: "
                << (check_hash == results[0].log_hash ? "ok" : "MISMATCH")
                << '\n';
      if (check_hash != results[0].log_hash) return 1;
    }
  }

  std::filesystem::create_directories(outdir);
  {
    std::ofstream out(outdir + "/model.xml");
    out << uml::to_xml_string(*sys.model);
  }
  {
    std::ofstream out(outdir + "/sim.log");
    out << log_text;
  }
  std::cout << "simulated " << horizon_ms << " ms (" << events << " events)\n"
            << "wrote " << outdir << "/model.xml and " << outdir
            << "/sim.log\n";
  if (!faults_path.empty()) {
    // Degraded-mode runs print the profiling report directly: its
    // reliability section is the point of the exercise.
    const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
    const auto log = sim::SimulationLog::parse(log_text);
    std::cout << '\n' << profiler::analyze(info, log).to_text();
  }
  return 0;
}

int print_campaign_result(const sim::CampaignResult& result) {
  std::cout << result.aggregate.to_text();
  if (!result.completed) {
    std::cout << "partial:   stopped at scenario " << result.next << " of ["
              << result.first << ", " << result.end << ") — resume with "
              "--resume\n";
    return 1;
  }
  return 0;
}

int cmd_campaign_tutmac(const std::string& campaign_path,
                        sim::CampaignOptions options,
                        const std::string& backend,
                        const std::string& profile_spec) {
  options.profile = resolve_profile(profile_spec);
  if (!profile_spec.empty()) {
    std::cout << "profile: " << options.profile.to_text() << '\n';
  }
  const std::filesystem::path base =
      std::filesystem::path(campaign_path).parent_path();
  // Fault-plan files referenced by the campaign resolve relative to the
  // campaign file, like XML includes everywhere else. The profile's arena
  // ceiling governs the campaign-spec parse itself.
  const auto spec = sim::CampaignSpec::from_xml_text(
      read_file(campaign_path),
      [&base](const std::string& file) {
        const std::filesystem::path p(file);
        return read_file(p.is_absolute() ? file : (base / p).string());
      },
      static_cast<std::size_t>(options.profile.arena_bytes));

  // One built system + compiled image per swept mapping (entry 0 is the
  // paper mapping when the sweep names none). The systems stay alive for
  // their signal handles, which the setup callback injects through.
  std::vector<std::string> mapping_names = spec.mapping_names;
  if (mapping_names.empty()) mapping_names.push_back("paper");
  std::vector<tutmac::System> systems;
  std::vector<std::shared_ptr<const sim::CompiledModel>> images;
  for (const std::string& name : mapping_names) {
    tutmac::Options opt;
    if (name == "paper") {
      opt.mapping = tutmac::MappingChoice::Paper;
    } else if (name == "loadBalanced") {
      opt.mapping = tutmac::MappingChoice::LoadBalanced;
    } else if (name == "singlePe") {
      opt.mapping = tutmac::MappingChoice::SinglePe;
    } else {
      throw std::invalid_argument(
          "campaign: [campaign.ref.unknown] unknown tutmac mapping '" + name +
          "' (paper, loadBalanced, singlePe)");
    }
    systems.push_back(tutmac::build(opt));
    mapping::SystemView view(*systems.back().model);
    images.push_back(sim::CompiledModel::build(view));
  }

  // --backend=native wraps every compiled image in a generated NativeImage.
  // All images fall back together: a half-native campaign would make the
  // provenance column ambiguous.
  std::vector<std::shared_ptr<const sim::BackendImage>> backends;
  if (backend == "native") {
    backends.reserve(images.size());
    for (const auto& image : images) {
      const auto native = make_backend(backend, image);
      if (!native) {
        backends.clear();
        break;
      }
      backends.push_back(native);
    }
  } else if (!backend.empty() && backend != "interpreter") {
    throw std::invalid_argument("unknown --backend '" + backend +
                                "' (interpreter, native)");
  }
  std::cout << "backend: " << (backends.empty() ? "interpreter" : "native");
  for (std::size_t i = 0; i < backends.size(); ++i) {
    char hex[48];
    std::snprintf(hex, sizeof hex, " %s=%016llx", mapping_names[i].c_str(),
                  static_cast<unsigned long long>(
                      backends[i]->content_hash()));
    std::cout << hex;
  }
  std::cout << '\n';

  const auto setup =
      [&systems](sim::Simulation& simulation, const sim::Scenario& sc) {
        const tutmac::System& sys = systems[sc.image];
        tutmac::Options o = sys.options;
        o.horizon = simulation.config().horizon;
        o.slot_period = static_cast<sim::Time>(
            sc.param("slotPeriod", static_cast<long>(o.slot_period)));
        o.rx_period = static_cast<sim::Time>(
            sc.param("rxPeriod", static_cast<long>(o.rx_period)));
        o.msdu_period = static_cast<sim::Time>(
            sc.param("msduPeriod", static_cast<long>(o.msdu_period)));
        sys.inject_workload(simulation, o);
      };
  const sim::CampaignRunner runner =
      backends.empty() ? sim::CampaignRunner(std::move(images), setup)
                       : sim::CampaignRunner(std::move(backends), setup);

  const sim::CampaignResult result = runner.run(spec, options);
  for (const std::string& note : result.notes) {
    std::cout << "note: " << note << '\n';
  }
  const std::uint64_t ran = result.next - result.first;
  std::cout << "campaign '" << spec.name << "': scenarios [" << result.first
            << ", " << result.end << ") of " << spec.total();
  if (options.shard.count > 1) {
    std::cout << "  (shard " << options.shard.index << "/"
              << options.shard.count << ")";
  }
  std::cout << "\n";
  if (result.wall_seconds > 0) {
    char rate[64];
    std::snprintf(rate, sizeof rate, "%.0f runs/sec, %.2f s wall\n",
                  static_cast<double>(ran) / result.wall_seconds,
                  result.wall_seconds);
    std::cout << rate;
  }
  return print_campaign_result(result);
}

int cmd_campaign_merge(const std::vector<std::string>& parts) {
  const sim::CampaignResult result = sim::merge_campaign_parts(parts);
  std::cout << "merged " << parts.size() << " part file(s): scenarios [0, "
            << result.end << ")\n";
  return print_campaign_result(result);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "info" && args.size() == 2) return cmd_info(args[1]);
    if (cmd == "validate" && (args.size() == 2 || args.size() == 3)) {
      const bool json = args.size() == 3 && args[2] == "--json";
      if (args.size() == 3 && !json) return usage();
      return cmd_validate(args[1], json);
    }
    if (cmd == "lint" && args.size() >= 2) {
      if (args[1] == "--rules" && args.size() == 2) return cmd_lint_rules();
      std::string faults_path, baseline_path, write_baseline_path;
      bool json = false, werror = false;
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--json") {
          json = true;
        } else if (args[i] == "--Werror") {
          werror = true;
        } else if (args[i] == "--faults" && i + 1 < args.size()) {
          faults_path = args[++i];
        } else if (args[i] == "--baseline" && i + 1 < args.size()) {
          baseline_path = args[++i];
        } else if (args[i] == "--write-baseline" && i + 1 < args.size()) {
          write_baseline_path = args[++i];
        } else {
          return usage();
        }
      }
      return cmd_lint(args[1], faults_path, json, werror, baseline_path,
                      write_baseline_path);
    }
    if (cmd == "diagram" && args.size() == 3) {
      return cmd_diagram(args[1], args[2]);
    }
    if (cmd == "codegen" && (args.size() == 3 || args.size() == 4)) {
      const bool host = args.size() == 4 && args[3] == "--host";
      if (args.size() == 4 && !host) return usage();
      return cmd_codegen(args[1], args[2], host);
    }
    if (cmd == "profile" && args.size() == 3) {
      return cmd_profile(args[1], args[2]);
    }
    if (cmd == "efsm" && args.size() >= 3 && args[1] == "dump") {
      std::string machine;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--machine" && i + 1 < args.size()) {
          machine = args[++i];
        } else {
          return usage();
        }
      }
      return cmd_efsm_dump(args[2], machine);
    }
    if (cmd == "simulate" && args.size() >= 3 && args[1] == "tutmac") {
      long ms = 20;
      std::string faults_path;
      long seed = -1;  // negative: keep the plan's own seed
      std::size_t batch = 1;
      std::size_t threads = 0;
      std::string backend;
      std::string profile_spec;
      std::size_t i = 3;
      if (i < args.size() && args[i][0] != '-') ms = std::stol(args[i++]);
      while (i < args.size()) {
        if (args[i] == "--faults" && i + 1 < args.size()) {
          faults_path = args[++i];
        } else if (args[i] == "--seed" && i + 1 < args.size()) {
          seed = std::stol(args[++i]);
        } else if (args[i] == "--batch" && i + 1 < args.size()) {
          batch = static_cast<std::size_t>(std::stoul(args[++i]));
        } else if (args[i] == "--threads" && i + 1 < args.size()) {
          threads = static_cast<std::size_t>(std::stoul(args[++i]));
        } else if (args[i] == "--backend" && i + 1 < args.size()) {
          backend = args[++i];
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i].rfind("--backend=", 0) == 0) {
          backend = args[i].substr(10);
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i] == "--profile" && i + 1 < args.size()) {
          profile_spec = args[++i];
        } else if (args[i].rfind("--profile=", 0) == 0) {
          profile_spec = args[i].substr(10);
        } else {
          return usage();
        }
        ++i;
      }
      return cmd_simulate_tutmac(args[2], ms, faults_path, seed, batch,
                                 threads, backend, profile_spec);
    }
    if (cmd == "campaign" && args.size() >= 3 && args[1] == "merge") {
      return cmd_campaign_merge(
          std::vector<std::string>(args.begin() + 2, args.end()));
    }
    if (cmd == "campaign" && args.size() >= 3 && args[1] == "tutmac") {
      sim::CampaignOptions options;
      std::string backend;
      std::string profile_spec;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--backend" && i + 1 < args.size()) {
          backend = args[++i];
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i].rfind("--backend=", 0) == 0) {
          backend = args[i].substr(10);
          if (backend != "interpreter" && backend != "native") return usage();
        } else if (args[i] == "--profile" && i + 1 < args.size()) {
          profile_spec = args[++i];
        } else if (args[i].rfind("--profile=", 0) == 0) {
          profile_spec = args[i].substr(10);
        } else if (args[i] == "--threads" && i + 1 < args.size()) {
          options.threads = static_cast<std::size_t>(std::stoul(args[++i]));
        } else if (args[i] == "--shard" && i + 1 < args.size()) {
          const std::string& kn = args[++i];
          const std::size_t slash = kn.find('/');
          if (slash == std::string::npos) return usage();
          options.shard.index =
              static_cast<std::uint32_t>(std::stoul(kn.substr(0, slash)));
          options.shard.count =
              static_cast<std::uint32_t>(std::stoul(kn.substr(slash + 1)));
        } else if (args[i] == "--checkpoint" && i + 1 < args.size()) {
          options.checkpoint_path = args[++i];
        } else if (args[i] == "--resume") {
          options.resume = true;
        } else if (args[i] == "--samples" && i + 1 < args.size()) {
          options.samples_path = args[++i];
        } else {
          return usage();
        }
      }
      return cmd_campaign_tutmac(args[2], options, backend, profile_spec);
    }
    if (cmd == "roundtrip" && args.size() == 2) {
      std::cout << uml::to_xml_string(*load_model(args[1]));
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "tut: " << e.what() << '\n';
    return 1;
  }
}
