#!/usr/bin/env python3
"""Bench smoke check for the compiled simulation core.

Reads a Google Benchmark JSON report (bench_kernel_micro run with
--benchmark_format=json; a leading text banner is tolerated) and compares it
against the medians checked into BENCH_sim.json:

  * every benchmark listed under "smoke_medians" must be present and at most
    --tolerance (default 25%) slower than its checked-in median; an entry may
    carry its own "tolerance" (fractional, e.g. 0.35) overriding the flag —
    macro benches wobble more than the micro ones;
  * every pair under "smoke_min_speedups" (closure-vs-POD kernel,
    AST-vs-bytecode EFSM, bytecode-vs-native) must keep at least its
    minimum speedup — this is machine-independent, so it holds even when
    the runner is faster or slower than the box that produced the absolute
    numbers. A pair may carry an optional "tolerance" (fractional): the
    enforced floor becomes min * (1 - tolerance), for pairs whose ratio
    wobbles on a shared box (e.g. e2e campaign sweeps where the per-step
    win is diluted by kernel and reduction time).

Exit status: 0 ok, 1 regression, 2 usage/parse error.
"""

import argparse
import json
import sys


def load_report(path):
    """Parses benchmark JSON, skipping any banner lines before the '{'."""
    with open(path) as f:
        lines = f.read().splitlines()
    for i, line in enumerate(lines):
        if line.lstrip().startswith("{"):
            return json.loads("\n".join(lines[i:]))
    raise ValueError(f"{path}: no JSON object found")


UNIT_NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def medians_ns(report):
    """run_name -> median real_time in ns (single runs count as medians)."""
    out = {}
    singles = {}
    for b in report.get("benchmarks", []):
        scale = UNIT_NS[b.get("time_unit", "ns")]
        name = b.get("run_name", b.get("name", ""))
        if b.get("aggregate_name") == "median":
            out[name] = b["real_time"] * scale
        elif "aggregate_name" not in b:
            singles.setdefault(name, []).append(b["real_time"] * scale)
    for name, times in singles.items():
        if name not in out:
            times.sort()
            out[name] = times[len(times) // 2]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="benchmark JSON output")
    ap.add_argument("--baseline", default="BENCH_sim.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional slowdown vs checked-in medians")
    args = ap.parse_args()

    # Failure modes carry stable "[rule]" tags so CI log greps and humans
    # can tell a missing artifact from a corrupted one at a glance.
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_bench_smoke: [bench.baseline.missing] cannot read "
              f"baseline '{args.baseline}': {e}", file=sys.stderr)
        return 2
    except ValueError as e:
        print(f"check_bench_smoke: [bench.baseline.malformed] "
              f"'{args.baseline}' is not valid JSON: {e}", file=sys.stderr)
        return 2
    if not isinstance(baseline, dict):
        print(f"check_bench_smoke: [bench.baseline.malformed] "
              f"'{args.baseline}' must be a JSON object, got "
              f"{type(baseline).__name__}", file=sys.stderr)
        return 2

    try:
        measured = medians_ns(load_report(args.report))
    except OSError as e:
        print(f"check_bench_smoke: [bench.report.missing] cannot read "
              f"report '{args.report}': {e}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as e:
        print(f"check_bench_smoke: [bench.report.malformed] "
              f"'{args.report}' is not a benchmark JSON report: {e}",
              file=sys.stderr)
        return 2

    failures = []
    try:
        median_specs = list(baseline.get("smoke_medians", {}).items())
        speedup_specs = list(baseline.get("smoke_min_speedups", {}).items())
    except AttributeError as e:
        print(f"check_bench_smoke: [bench.baseline.malformed] smoke sections "
              f"of '{args.baseline}' must be objects: {e}", file=sys.stderr)
        return 2
    for name, spec in median_specs:
        try:
            expected = spec["real_time"] * UNIT_NS[spec["time_unit"]]
            tolerance = float(spec.get("tolerance", args.tolerance))
        except (KeyError, TypeError, ValueError) as e:
            print(f"check_bench_smoke: [bench.baseline.malformed] "
                  f"smoke_medians['{name}'] needs real_time, a known "
                  f"time_unit and an optional numeric tolerance: {e}",
                  file=sys.stderr)
            return 2
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from report (crashed or renamed?)")
            continue
        ratio = got / expected
        mark = "FAIL" if ratio > 1 + tolerance else "ok"
        print(f"{mark:4s} {name:42s} {got:12.1f} ns  vs {expected:12.1f} ns "
              f"({ratio - 1:+.0%} vs baseline)")
        if ratio > 1 + tolerance:
            failures.append(f"{name}: {ratio - 1:.0%} slower than checked-in "
                            f"median (tolerance {tolerance:.0%})")

    for key, spec in speedup_specs:
        try:
            before = measured.get(spec["before"])
            after = measured.get(spec["after"])
            minimum = spec["min"] * (1.0 - float(spec.get("tolerance", 0.0)))
        except (KeyError, TypeError, ValueError) as e:
            print(f"check_bench_smoke: [bench.baseline.malformed] "
                  f"smoke_min_speedups['{key}'] needs before/after/min and "
                  f"an optional numeric tolerance: {e}", file=sys.stderr)
            return 2
        if before is None or after is None or after <= 0:
            failures.append(f"{key}: pair {spec['before']} / {spec['after']} "
                            "not measured")
            continue
        speedup = before / after
        mark = "ok" if speedup >= minimum else "FAIL"
        print(f"{mark:4s} speedup {key:34s} {speedup:5.2f}x "
              f"(min {minimum:.2f}x)")
        if speedup < minimum:
            failures.append(f"{key}: speedup {speedup:.2f}x below minimum "
                            f"{minimum:.2f}x")

    if failures:
        print("\nbench smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
