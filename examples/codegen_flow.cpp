// codegen_flow — automatic implementation generation (Figure 2, left path).
//
// Generates the C implementation of the TUTMAC application from its UML
// model — per-component EFSM code, the signal table, the run-time interface
// and the process-group table — and writes it to ./tutmac_gen/. With
// -DTUT_PROFILING the generated code logs the simulation log-file entries
// (the "custom C functions" of the profiling flow).
#include <iostream>

#include "codegen/codegen.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

int main() {
  tutmac::System sys = tutmac::build();

  codegen::Options opt;
  opt.profiling_instrumentation = true;
  // Also emit the host reference runtime and platform glue, with 10 ms of
  // the standard WLAN workload baked in: the output is a runnable program
  // that writes the simulation log-file to stdout.
  opt.host_runtime = true;
  opt.host_horizon = 10'000'000;
  const auto& o = sys.options;
  opt.workload.push_back(codegen::Injection{
      "pphy", o.slot_period, o.slot_period,
      static_cast<std::size_t>(opt.host_horizon / o.slot_period),
      sys.radio_slot, {}});
  opt.workload.push_back(codegen::Injection{
      "pphy", o.rx_period + 7'777, o.rx_period,
      static_cast<std::size_t>(opt.host_horizon / o.rx_period), sys.rx_frame,
      {256}});
  opt.workload.push_back(codegen::Injection{
      "puser", o.msdu_period + 3'333, o.msdu_period,
      static_cast<std::size_t>(opt.host_horizon / o.msdu_period),
      sys.user_msdu, {512}});
  const codegen::CodeBundle bundle = codegen::generate(*sys.model, opt);

  std::cout << "generated " << bundle.files.size() << " files, "
            << bundle.total_lines() << " lines (" << bundle.total_bytes()
            << " bytes)\n\n";
  for (const auto& f : bundle.files) {
    std::cout << "  " << f.path << '\n';
  }

  bundle.write_to("tutmac_gen");
  std::cout << "\nwrote sources to ./tutmac_gen/\n";
  std::cout << "build and run natively:\n"
            << "  gcc -std=c99 -Itutmac_gen tutmac_gen/*.c -o tutmac_app\n"
            << "  ./tutmac_app > simulation.log   # the log-file the "
               "profiler parses\n\n";

  // Show a taste of the generated dispatcher.
  const auto* rca = bundle.find("radio_channel_access.c");
  if (rca != nullptr) {
    std::cout << "--- radio_channel_access.c (first 40 lines) ---\n";
    std::size_t lines = 0, pos = 0;
    while (lines < 40 && pos < rca->content.size()) {
      const std::size_t nl = rca->content.find('\n', pos);
      if (nl == std::string::npos) break;
      std::cout << rca->content.substr(pos, nl - pos + 1);
      pos = nl + 1;
      ++lines;
    }
  }
  return 0;
}
