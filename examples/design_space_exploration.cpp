// design_space_exploration — the profiling feedback loop of Section 4.4.
//
// Profiles the paper's TUTMAC configuration, extracts per-process load and
// communication, then lets the exploration tools propose an automatic
// grouping and mapping. Compares the paper's design against the proposals
// and against naive alternatives, both by estimated cost and by actually
// re-simulating each alternative.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "explore/engine.hpp"
#include "explore/explore.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

struct Row {
  std::string name;
  std::uint64_t inter_group = 0;
  double est_makespan = 0.0;
  sim::Time busiest_pe = 0;
};

Row simulate_variant(const std::string& name, tutmac::GroupingChoice grouping,
                     tutmac::MappingChoice mapping_choice) {
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  opt.grouping = grouping;
  opt.mapping = mapping_choice;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());

  Row row;
  row.name = name;
  row.inter_group = report.inter_group_signals();
  for (const auto& [pe, stats] : simulation->pe_stats()) {
    row.busiest_pe = std::max(row.busiest_pe, stats.busy_time);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // --threads N controls the exploration engine (0 = hardware concurrency).
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atol(argv[++i]));
    }
  }

  // 1. Profile the paper configuration.
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());

  const auto stats = explore::ProcessStats::from_report(report);
  std::cout << "profiled " << stats.processes.size() << " processes\n";
  for (const auto& p : stats.processes) {
    std::cout << "  " << std::left << std::setw(10) << p << std::right
              << std::setw(10) << stats.cycles.at(p) << " cycles\n";
  }

  // 2. Automatic grouping proposal (4 groups, like the paper).
  std::map<std::string, std::string> types;
  for (const auto& p : stats.processes) types[p] = "general";
  types["crc"] = "hardware";
  const explore::Grouping proposal = explore::propose_grouping(stats, types, 4);
  std::cout << "\nproposed grouping (inter-group signals "
            << explore::inter_group_signals(proposal, stats) << "):\n";
  for (const auto& group : proposal) {
    std::cout << "  {";
    for (std::size_t i = 0; i < group.size(); ++i) {
      std::cout << (i ? ", " : " ") << group[i];
    }
    std::cout << " }\n";
  }

  // 3. Automatic mapping proposal for the proposed grouping.
  std::vector<std::string> group_type;
  for (const auto& group : proposal) {
    group_type.push_back(group.size() == 1 && group[0] == "crc" ? "hardware"
                                                                : "general");
  }
  const std::vector<explore::PeDesc> pes = {
      {"processor1", 50, "general"},
      {"processor2", 50, "general"},
      {"processor3", 50, "general"},
      {"accelerator1", 100, "hw_accelerator"}};
  const auto mapping_proposal =
      explore::propose_mapping(proposal, group_type, stats, pes);
  std::cout << "\nproposed mapping (estimated makespan "
            << static_cast<long long>(mapping_proposal.cost.makespan)
            << " ticks):\n";
  for (std::size_t g = 0; g < proposal.size(); ++g) {
    std::cout << "  group" << g + 1 << " -> " << mapping_proposal.target[g]
              << '\n';
  }

  // 4. Full design-space sweep with the parallel exploration engine: every
  // target group count, greedy plus seeded-random restarts, deterministic
  // across thread counts.
  explore::EngineOptions eopt;
  eopt.threads = threads;
  const explore::ExploreEngine engine(stats, pes, {}, eopt);
  const auto sweep = engine.explore(types);
  const auto& winner = sweep.winner();
  std::cout << "\nengine sweep (" << sweep.candidates.size()
            << " candidates, " << engine.threads() << " threads):\n";
  std::cout << "  winner: " << winner.grouping.size()
            << " groups, estimated makespan "
            << static_cast<long long>(winner.mapping.cost.makespan)
            << " ticks, inter-group signals " << winner.inter_group << '\n';
  for (std::size_t g = 0; g < winner.grouping.size(); ++g) {
    std::cout << "  {";
    for (std::size_t i = 0; i < winner.grouping[g].size(); ++i) {
      std::cout << (i ? ", " : " ") << winner.grouping[g][i];
    }
    std::cout << " } -> " << winner.mapping.target[g] << '\n';
  }

  // 5. Re-simulate design alternatives and compare.
  std::cout << "\nvariant comparison (10 ms simulations):\n";
  std::cout << std::left << std::setw(28) << "variant" << std::right
            << std::setw(14) << "inter-group" << std::setw(22)
            << "busiest PE (ticks)" << '\n';
  for (const Row& row :
       {simulate_variant("paper grouping+mapping", tutmac::GroupingChoice::Paper,
                         tutmac::MappingChoice::Paper),
        simulate_variant("per-process groups", tutmac::GroupingChoice::PerProcess,
                         tutmac::MappingChoice::Paper),
        simulate_variant("single sw group", tutmac::GroupingChoice::SingleSw,
                         tutmac::MappingChoice::SinglePe),
        simulate_variant("load-balanced mapping", tutmac::GroupingChoice::Paper,
                         tutmac::MappingChoice::LoadBalanced)}) {
    std::cout << std::left << std::setw(28) << row.name << std::right
              << std::setw(14) << row.inter_group << std::setw(22)
              << row.busiest_pe << '\n';
  }
  return 0;
}
