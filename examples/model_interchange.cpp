// model_interchange — tool interoperability through the XML dialect.
//
// The paper's flow moves models between a UML tool (Telelogic TAU G2) and
// the custom profiling tool via an XML presentation. This example plays
// both roles: it exports the TUTMAC model, re-imports it as a different
// tool would, re-validates it, demonstrates that an external edit (retagging
// a component instance) is picked up, and shows the model-parsing stage of
// the profiler working from XML alone.
#include <iostream>

#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"
#include "uml/validation.hpp"
#include "xml/tree.hpp"

using namespace tut;

int main() {
  tutmac::System sys = tutmac::build();

  // Export: streamed straight into one string, no intermediate tree.
  const std::string xml = uml::to_xml_string(*sys.model);
  std::cout << "exported model: " << xml.size() << " bytes of XML\n";

  // The zero-copy load path: the pull cursor builds an arena-backed tree
  // whose names/attributes/text are views into `xml` (which must outlive
  // the Tree — here both are stack-scoped).
  const xml::Tree tree = xml::Tree::parse(xml);
  std::cout << "arena tree: " << tree.root().subtree_size() << " nodes in "
            << tree.arena().bytes_used() << " arena bytes ("
            << tree.arena().chunk_count() << " chunks)\n";

  // Import (as a second tool would); from_xml_string reads via that tree.
  auto imported = uml::from_xml_string(xml);
  std::cout << "imported " << imported->size() << " model elements (original "
            << sys.model->size() << ")\n";

  const auto result = profile::make_validator().run(*imported);
  std::cout << "re-validation: " << result.error_count() << " errors, "
            << result.warning_count() << " warnings\n";

  // An external tool edits a tagged value: give processor2 more memory.
  uml::Element* p2 = nullptr;
  for (uml::Element* e : imported->stereotyped("ComponentInstance")) {
    if (e->name() == "processor2") p2 = e;
  }
  if (p2 != nullptr) {
    auto* app = p2->application("ComponentInstance");
    app->tagged_values["IntMemory"] = "131072";
    std::cout << "edited processor2 IntMemory -> "
              << p2->tagged_value("IntMemory") << '\n';
  }

  // Round-trip the edit.
  auto again = uml::from_xml_string(uml::to_xml_string(*imported));
  for (uml::Element* e : again->stereotyped("ComponentInstance")) {
    if (e->name() == "processor2") {
      std::cout << "after round trip, processor2 IntMemory = "
                << e->tagged_value("IntMemory") << '\n';
    }
  }

  // Profiler stage 1 works straight from the XML text.
  const auto info = profiler::ProcessGroupInfo::from_xml(xml);
  std::cout << "\nprocess group information parsed from XML:\n";
  for (const auto& [process, group] : info.group_of) {
    std::cout << "  " << process << " -> " << group << '\n';
  }
  return 0;
}
