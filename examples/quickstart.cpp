// quickstart — the smallest complete TUT-Profile flow.
//
// Builds a two-process application, a two-PE platform and a mapping with the
// public builder API, validates the model against the profile's design
// rules, co-simulates it, and prints the profiling report.
#include <iostream>

#include "appmodel/appmodel.hpp"
#include "mapping/mapping.hpp"
#include "platform/platform.hpp"
#include "profile/tut_profile.hpp"
#include "profiler/profiler.hpp"
#include "sim/simulator.hpp"

using namespace tut;

int main() {
  // 1. A model with the TUT-Profile installed.
  uml::Model model("quickstart");
  profile::TutProfile prof = profile::install(model);

  // 2. Signals.
  uml::Signal& ping = model.create_signal("Ping");
  ping.add_parameter("seq", "int");
  uml::Signal& pong = model.create_signal("Pong");
  pong.add_parameter("seq", "int");

  // 3. Application: two functional components playing ping-pong.
  appmodel::ApplicationBuilder ab(model, prof);
  uml::Class& app = ab.application("PingPong");

  uml::Class& pinger = ab.component("Pinger", {{"CodeMemory", "1024"}});
  model.add_port(pinger, "io").require(ping).provide(pong);
  {
    auto& sm = *pinger.behavior();
    sm.declare_variable("seq", 0);
    auto& idle = model.add_state(sm, "Idle", true);
    idle.on_entry(uml::Action::set_timer("kick", "1000"));
    auto& wait = model.add_state(sm, "Wait");
    model.add_timer_transition(sm, idle, wait, "kick")
        .add_effect(uml::Action::compute("200"))
        .add_effect(uml::Action::send("io", ping, {"seq"}));
    model.add_transition(sm, wait, idle, pong, "io")
        .add_effect(uml::Action::compute("100"))
        .add_effect(uml::Action::assign("seq", "seq + 1"));
  }

  uml::Class& ponger = ab.component("Ponger", {{"CodeMemory", "1024"}});
  model.add_port(ponger, "io").provide(ping).require(pong);
  {
    auto& sm = *ponger.behavior();
    auto& idle = model.add_state(sm, "Idle", true);
    model.add_transition(sm, idle, idle, ping, "io")
        .add_effect(uml::Action::compute("300"))
        .add_effect(uml::Action::send("io", pong, {"seq"}));
  }

  uml::Property& p1 = ab.process("pinger", pinger, {{"ProcessType", "general"}});
  uml::Property& p2 = ab.process("ponger", ponger, {{"ProcessType", "general"}});
  model.connect(app, "pinger", "io", "ponger", "io");

  uml::Property& g1 = ab.group("g_ping", {{"ProcessType", "general"}});
  uml::Property& g2 = ab.group("g_pong", {{"ProcessType", "general"}});
  ab.assign(p1, g1);
  ab.assign(p2, g2);

  // 4. Platform: two processors on one HIBI segment.
  platform::PlatformBuilder pb(model, prof);
  pb.platform("MiniBoard");
  uml::Class& cpu = pb.component_type(
      "Cpu", {{"Type", "general"}, {"Frequency", "100"}});
  uml::Property& cpu1 = pb.instance("cpu1", cpu);
  uml::Property& cpu2 = pb.instance("cpu2", cpu);
  uml::Property& seg = pb.segment(
      "bus", {{"DataWidth", "32"}, {"Frequency", "100"}});
  pb.wrapper(cpu1, seg);
  pb.wrapper(cpu2, seg);

  // 5. Mapping.
  mapping::MappingBuilder mb(model, prof);
  mb.map(g1, cpu1);
  mb.map(g2, cpu2);

  // 6. Validate against the TUT-Profile design rules.
  const uml::ValidationResult result = profile::make_validator().run(model);
  std::cout << "validation: " << result.error_count() << " errors, "
            << result.warning_count() << " warnings\n";
  if (!result.ok()) {
    std::cerr << result.to_string();
    return 1;
  }

  // 7. Co-simulate 1 ms and profile.
  mapping::SystemView view(model);
  sim::Simulation simulation(view, {.horizon = 1'000'000});
  simulation.run();

  const auto info = profiler::ProcessGroupInfo::from_model(model);
  const auto report = profiler::analyze(info, simulation.log());
  std::cout << '\n' << report.to_text() << '\n';
  std::cout << "round trips completed: "
            << simulation.instance("pinger").variable("seq") << '\n';
  return 0;
}
