// tutmac_terminal — the paper's full case study, end to end (Figures 1-2).
//
// Builds the TUTMAC application and the TUTWLAN platform, validates the
// model, regenerates the paper's diagrams as Graphviz DOT files, serializes
// the model to its XML interchange form, co-simulates the WLAN workload,
// writes the simulation log-file, and prints the profiling report (the
// reproduction of Table 4). Artifacts land in ./tutmac_out/.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "diagram/diagram.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"
#include "uml/validation.hpp"

using namespace tut;

namespace {

void save(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::cout << "  wrote " << path.string() << " (" << content.size()
            << " bytes)\n";
}

}  // namespace

int main() {
  const std::filesystem::path out_dir = "tutmac_out";
  std::filesystem::create_directories(out_dir);

  std::cout << "== building TUTMAC + TUTWLAN model ==\n";
  tutmac::System sys = tutmac::build();
  std::cout << "  model elements: " << sys.model->size() << "\n";

  std::cout << "== validating against TUT-Profile design rules ==\n";
  const auto result = profile::make_validator().run(*sys.model);
  std::cout << "  " << result.error_count() << " errors, "
            << result.warning_count() << " warnings\n";
  if (!result.ok()) {
    std::cerr << result.to_string();
    return 1;
  }

  std::cout << "== regenerating the paper's figures ==\n";
  save(out_dir / "fig3_profile_hierarchy.txt",
       diagram::profile_hierarchy_text(sys.prof));
  save(out_dir / "fig4_class_diagram.dot",
       diagram::class_diagram_dot(*sys.model));
  save(out_dir / "fig5_composite_structure.dot",
       diagram::composite_structure_dot(*sys.app));
  save(out_dir / "fig6_grouping.dot", diagram::grouping_dot(*sys.model));
  save(out_dir / "fig7_platform.dot", diagram::platform_dot(*sys.model));
  save(out_dir / "fig8_mapping.dot", diagram::mapping_dot(*sys.model));

  std::cout << "== serializing the model (XML interchange) ==\n";
  save(out_dir / "tutmac_model.xml", uml::to_xml_string(*sys.model));

  std::cout << "== co-simulating " << sys.options.horizon / 1'000'000
            << " ms of WLAN traffic ==\n";
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  std::cout << "  events dispatched: " << simulation->events_dispatched()
            << "\n";
  for (const auto& [pe, stats] : simulation->pe_stats()) {
    std::cout << "  " << pe << ": busy " << stats.busy_time << " ticks, "
              << stats.steps << " transitions\n";
  }
  for (const auto& [seg, stats] : simulation->segment_stats()) {
    std::cout << "  " << seg << ": " << stats.transfers << " transfers, wait "
              << stats.wait_time << " ticks\n";
  }
  save(out_dir / "simulation.log", simulation->log().to_text());

  std::cout << "== profiling (Table 4 reproduction) ==\n";
  const auto info =
      profiler::ProcessGroupInfo::from_xml(uml::to_xml_string(*sys.model));
  const auto report = profiler::analyze(info, simulation->log());
  std::cout << report.to_text() << '\n';
  save(out_dir / "profiling_report.txt", report.to_text());

  std::cout << "paper Table 4(a) for comparison: group1 92.1%, group2 5.2%, "
               "group3 2.5%, group4 0.2%, environment 0.0%\n";
  return 0;
}
